"""Differentiable neural-network operations.

All functions take and return :class:`repro.nn.tensor.Tensor` objects and
register backward closures on the autograd graph.  The layout convention is
``(batch, channels, height, width)`` for images, matching the paper's
convolutional notation (filters ``K_j^i`` of size ``s×s`` and depth ``d``).

Convolution is implemented with im2col + one large matmul, which is the only
way to make numpy training tractable on a single CPU core; the im2col matrix
is also exactly the crossbar input layout used by :mod:`repro.snc.mapping`
(Figure 2 of the paper unrolls a convolution the same way).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.nn.tensor import Tensor

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


# ---------------------------------------------------------------------------
# Elementwise
# ---------------------------------------------------------------------------

def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    out_data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (x.data > 0))

    return Tensor._make(out_data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Leaky ReLU with configurable negative slope."""
    out_data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * np.where(x.data > 0, 1.0, negative_slope))

    return Tensor._make(out_data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    """Logistic sigmoid."""
    out_data = 1.0 / (1.0 + np.exp(-x.data))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    out_data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (x,), backward)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept units by ``1/(1-p)`` during training."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    out_data = x.data * mask

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------

def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``.

    ``x`` is ``(batch, in_features)``, ``weight`` is
    ``(out_features, in_features)`` — the Torch convention the paper's
    networks were written in.
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------------
# Convolution (im2col)
# ---------------------------------------------------------------------------

def _im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unroll image patches into rows.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(batch * out_h * out_w, channels * kh * kw)``.
    """
    batch, channels, height, width = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (height + 2 * ph - kh) // sh + 1
    out_w = (width + 2 * pw - kw) // sw + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]  # (B, C, out_h, out_w, kh, kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        batch * out_h * out_w, channels * kh * kw
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_hw: Tuple[int, int],
) -> np.ndarray:
    """Scatter-add column gradients back into image layout (inverse of im2col)."""
    batch, channels, height, width = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = out_hw
    padded = np.zeros((batch, channels, height + 2 * ph, width + 2 * pw))
    cols6 = cols.reshape(batch, out_h, out_w, channels, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Loop only over the (small) kernel footprint; each slice add is vectorized.
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols6[
                :, :, :, :, i, j
            ]
    if ph or pw:
        return padded[:, :, ph : ph + height, pw : pw + width]
    return padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D cross-correlation (the usual DNN "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(batch, in_channels, height, width)``.
    weight:
        Filters of shape ``(out_channels, in_channels, kh, kw)``.
    bias:
        Optional per-output-channel bias of shape ``(out_channels,)``.
    stride, padding:
        Int or (h, w) pair.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    batch = x.shape[0]
    out_channels, in_channels, kh, kw = weight.shape
    if x.shape[1] != in_channels:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_channels}"
        )

    cols, (out_h, out_w) = _im2col(x.data, (kh, kw), stride, padding)
    w_mat = weight.data.reshape(out_channels, -1)
    out_mat = cols @ w_mat.T  # (B*out_h*out_w, out_channels)
    out_data = out_mat.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    x_shape = x.shape

    def backward(grad: np.ndarray) -> None:
        grad_mat = grad.transpose(0, 2, 3, 1).reshape(-1, out_channels)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad_mat.sum(axis=0))
        if weight.requires_grad:
            weight._accumulate((grad_mat.T @ cols).reshape(weight.shape))
        if x.requires_grad:
            dcols = grad_mat @ w_mat
            x._accumulate(
                _col2im(dcols, x_shape, (kh, kw), stride, padding, (out_h, out_w))
            )

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward)


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

def max_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Max pooling.  ``stride`` defaults to ``kernel`` (non-overlapping)."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    batch, channels, height, width = x.shape
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1

    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    flat = windows.reshape(batch, channels, out_h, out_w, kh * kw)
    argmax = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # Recover (row, col) of each max inside its window, flatten to a
        # raveled index into the input, and scatter-add with bincount —
        # one C-level histogram pass instead of np.indices + np.add.at
        # (which materializes four index arrays and dispatches per-element).
        ki, kj = np.divmod(argmax, kw)
        rows = np.arange(out_h).reshape(1, 1, -1, 1) * sh + ki
        cols_ = np.arange(out_w).reshape(1, 1, 1, -1) * sw + kj
        plane = (
            np.arange(batch).reshape(-1, 1, 1, 1) * channels
            + np.arange(channels).reshape(1, -1, 1, 1)
        ) * (height * width)
        flat = (plane + rows * width + cols_).ravel()
        dx = np.bincount(
            flat, weights=grad.ravel(), minlength=batch * channels * height * width
        )
        x._accumulate(dx.reshape(x.shape))

    return Tensor._make(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: IntPair, stride: Optional[IntPair] = None) -> Tensor:
    """Average pooling.  ``stride`` defaults to ``kernel``."""
    kh, kw = _pair(kernel)
    sh, sw = _pair(stride) if stride is not None else (kh, kw)
    batch, channels, height, width = x.shape
    out_h = (height - kh) // sh + 1
    out_w = (width - kw) // sw + 1

    windows = np.lib.stride_tricks.sliding_window_view(x.data, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::sh, ::sw, :, :]
    out_data = windows.mean(axis=(-2, -1))
    scale = 1.0 / (kh * kw)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dx = np.zeros_like(x.data)
        g = grad * scale
        for i in range(kh):
            for j in range(kw):
                dx[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += g
        x._accumulate(dx)

    return Tensor._make(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning ``(batch, channels)``."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# Normalization
# ---------------------------------------------------------------------------

def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel axis of ``(B, C, H, W)`` or ``(B, C)``.

    ``running_mean``/``running_var`` are plain arrays mutated in place during
    training (exponential moving average with the given ``momentum``).
    """
    if x.ndim == 4:
        axes = (0, 2, 3)
        shape = (1, -1, 1, 1)
    elif x.ndim == 2:
        axes = (0,)
        shape = (1, -1)
    else:
        raise ValueError(f"batch_norm expects 2-D or 4-D input, got {x.ndim}-D")

    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size // x.data.shape[1]
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        unbiased = var * count / max(count - 1, 1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased
    else:
        mean = running_mean
        var = running_var

    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = (x.data - mean.reshape(shape)) * inv_std.reshape(shape)
    out_data = gamma.data.reshape(shape) * x_hat + beta.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if beta.requires_grad:
            beta._accumulate(grad.sum(axis=axes))
        if gamma.requires_grad:
            gamma._accumulate((grad * x_hat).sum(axis=axes))
        if not x.requires_grad:
            return
        g = grad * gamma.data.reshape(shape)
        if training:
            count = x.data.size // x.data.shape[1]
            sum_g = g.sum(axis=axes, keepdims=True)
            sum_gx = (g * x_hat).sum(axis=axes, keepdims=True)
            inv = inv_std.reshape(shape)
            dx = inv * (g - sum_g / count - x_hat * sum_gx / count)
        else:
            dx = g * inv_std.reshape(shape)
        x._accumulate(dx)

    return Tensor._make(out_data, (x, gamma, beta), backward)


# ---------------------------------------------------------------------------
# Softmax / losses support
# ---------------------------------------------------------------------------

def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            softmax_vals = np.exp(out_data)
            x._accumulate(grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            inner = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def flatten(x: Tensor) -> Tensor:
    """Collapse all non-batch dimensions: ``(B, ...) → (B, prod(...))``."""
    return x.reshape(x.shape[0], -1)


def pad2d(x: Tensor, padding: IntPair) -> Tensor:
    """Zero-pad the two spatial dimensions of a 4-D tensor."""
    ph, pw = _pair(padding)
    out_data = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            h, w = x.shape[2], x.shape[3]
            x._accumulate(grad[:, :, ph : ph + h, pw : pw + w])

    return Tensor._make(out_data, (x,), backward)
