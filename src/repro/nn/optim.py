"""First-order optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Sequence[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and decoupled weight decay.

    Weight decay implements the λ·R(W) term of the paper's Eq. 2 with
    R(W) = ½‖W‖² (the "normal regularization on weights").
    """

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), with optional weight decay."""

    def __init__(
        self,
        params: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineLR:
    """Cosine annealing from the initial LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )
