"""Exporters: registry snapshots as Prometheus text or JSON.

Both exporters operate on a :class:`~repro.obs.metrics.RegistrySnapshot`
(or accept a live :class:`~repro.obs.metrics.MetricsRegistry` and
snapshot it), so exporting is always consistent under concurrency and
never perturbs the instruments.

- :func:`to_prometheus` renders the classic text exposition format:
  ``# HELP`` / ``# TYPE`` headers, one ``name{labels} value`` line per
  series.  Histograms render as summaries (``{quantile="0.5"}`` etc.
  plus ``_sum``/``_count``/``_min``/``_max``).
- :func:`to_json` / :func:`from_json` round-trip the full snapshot —
  including retained histogram reservoirs — through a stable,
  schema-checked JSON document (``from_json(to_json(r))`` reconstructs
  an equal :class:`RegistrySnapshot`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Union

from .metrics import (
    FamilySnapshot,
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
)

__all__ = ["to_prometheus", "to_json", "from_json", "EXPORT_SCHEMA_VERSION"]

#: Bumped on any incompatible change to the JSON document layout.
EXPORT_SCHEMA_VERSION = 1

#: Quantiles rendered in the Prometheus summary view.
_SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

_Source = Union[MetricsRegistry, RegistrySnapshot]


def _as_snapshot(source: _Source) -> RegistrySnapshot:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(labels: Dict[str, str], extra: Dict[str, str] = {}) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def to_prometheus(source: _Source) -> str:
    """Render a registry (or snapshot) in Prometheus text exposition format."""
    snap = _as_snapshot(source)
    lines: List[str] = []
    for family in snap.families:
        prom_type = "summary" if family.kind == "histogram" else family.kind
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {prom_type}")
        for labels, value in family.series:
            if isinstance(value, HistogramSnapshot):
                for q in _SUMMARY_QUANTILES:
                    estimate = value.quantile(q)
                    rendered = "NaN" if estimate != estimate else _format_value(estimate)
                    lines.append(
                        f"{family.name}{_format_labels(labels, {'quantile': str(q)})}"
                        f" {rendered}"
                    )
                lines.append(f"{family.name}_sum{_format_labels(labels)}"
                             f" {_format_value(value.total)}")
                lines.append(f"{family.name}_count{_format_labels(labels)}"
                             f" {value.count}")
                if value.minimum is not None:
                    lines.append(f"{family.name}_min{_format_labels(labels)}"
                                 f" {_format_value(value.minimum)}")
                if value.maximum is not None:
                    lines.append(f"{family.name}_max{_format_labels(labels)}"
                                 f" {_format_value(value.maximum)}")
            else:
                lines.append(f"{family.name}{_format_labels(labels)}"
                             f" {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_to_json(kind: str, labels: Dict[str, str], value: object) -> Dict:
    if kind == "histogram":
        assert isinstance(value, HistogramSnapshot)
        return {
            "labels": dict(labels),
            "count": value.count,
            "total": value.total,
            "min": value.minimum,
            "max": value.maximum,
            "samples": list(value.samples),
            "reservoir_size": value.reservoir_size,
        }
    return {"labels": dict(labels), "value": float(value)}  # type: ignore[arg-type]


def to_json(source: _Source, indent: int = 2) -> str:
    """Serialize a registry (or snapshot) to a stable JSON document."""
    snap = _as_snapshot(source)
    document = {
        "schema_version": EXPORT_SCHEMA_VERSION,
        "families": [
            {
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "series": [
                    _series_to_json(family.kind, labels, value)
                    for labels, value in family.series
                ],
            }
            for family in snap.families
        ],
    }
    return json.dumps(document, indent=indent, sort_keys=True)


def _series_from_json(kind: str, entry: Dict) -> tuple:
    labels = entry.get("labels")
    if not isinstance(labels, dict):
        raise ValueError("series entry is missing its 'labels' mapping")
    labels = {str(k): str(v) for k, v in labels.items()}
    if kind == "histogram":
        for required in ("count", "total", "samples", "reservoir_size"):
            if required not in entry:
                raise ValueError(f"histogram series is missing {required!r}")
        value: object = HistogramSnapshot(
            count=int(entry["count"]),
            total=float(entry["total"]),
            minimum=None if entry.get("min") is None else float(entry["min"]),
            maximum=None if entry.get("max") is None else float(entry["max"]),
            samples=tuple(float(s) for s in entry["samples"]),
            reservoir_size=int(entry["reservoir_size"]),
        )
    else:
        if "value" not in entry:
            raise ValueError(f"{kind} series is missing 'value'")
        value = float(entry["value"])
    return labels, value


def from_json(text: str) -> RegistrySnapshot:
    """Parse :func:`to_json` output back into a :class:`RegistrySnapshot`.

    Raises :class:`ValueError` on malformed documents (wrong schema
    version, missing fields, unknown metric kinds).
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"metrics export is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ValueError("metrics export must be a JSON object")
    version = document.get("schema_version")
    if version != EXPORT_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported metrics schema_version {version!r} "
            f"(expected {EXPORT_SCHEMA_VERSION})"
        )
    families_raw = document.get("families")
    if not isinstance(families_raw, list):
        raise ValueError("metrics export is missing its 'families' list")
    families = []
    for entry in families_raw:
        if not isinstance(entry, dict):
            raise ValueError("family entry must be a JSON object")
        kind = entry.get("kind")
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("family entry is missing its 'name'")
        series_raw = entry.get("series")
        if not isinstance(series_raw, list):
            raise ValueError(f"family {name!r} is missing its 'series' list")
        series = tuple(_series_from_json(kind, s) for s in series_raw)
        families.append(
            FamilySnapshot(name=name, kind=kind,
                           help=str(entry.get("help", "")), series=series)
        )
    return RegistrySnapshot(families=tuple(families))
