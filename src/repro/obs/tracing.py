"""Structured span tracing with an injected clock and a bounded buffer.

A :class:`Span` is one named, timed unit of work (an engine run, a
micro-batch formation, a replica chunk).  The :class:`Tracer` hands out
spans through a context manager::

    with tracer.span("engine.run", model="lenet") as span:
        ...                      # timed work
        span.set(rows=64)        # attach attributes mid-flight

or records pre-timed intervals directly via :meth:`Tracer.record` when
the caller already read the clock (plan step timings do this so the hot
loop pays exactly two clock reads per step, both through the injected
clock).

Parentage is tracked per-thread: a span opened while another is active
on the same thread becomes its child, so a serve trace nests
``server.submit -> batch.form -> replica.chunk -> engine.run``.

Finished spans land in a bounded ring (``max_spans``); old spans fall
off rather than growing memory.  ``spans_started``/``spans_finished``
counters are exact even after eviction.  The tracer never reads
``time.*`` itself — the clock is injected (RL005), so a
:class:`~repro.obs.clock.FakeClock` makes every duration assertable.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Dict, Iterator, List, Optional

from .clock import SYSTEM_CLOCK, Clock

__all__ = ["Span", "Tracer"]

#: Default bound on retained finished spans.
DEFAULT_MAX_SPANS = 4096


class Span:
    """One named, timed unit of work.

    A plain ``__slots__`` class rather than a dataclass: spans are
    created on serving hot paths (one per plan step), so construction
    cost matters.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attributes")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 start: float, end: Optional[float] = None,
                 attributes: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attributes = {} if attributes is None else attributes

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, span_id={self.span_id}, "
            f"parent_id={self.parent_id}, start={self.start}, "
            f"end={self.end}, attributes={self.attributes})"
        )

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: object) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.attributes.update(attributes)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable view of the span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _SpanContext:
    """Context manager that times a span and maintains the thread stack."""

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self.span)


class Tracer:
    """Collects spans into a bounded ring.  Thread-safe.

    The clock is injected at construction and is the only time source
    the tracer ever reads.
    """

    def __init__(self, clock: Clock = SYSTEM_CLOCK,
                 max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock
        self.max_spans = max_spans
        self._finished: deque = deque(maxlen=max_spans)
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._started = 0
        self._completed = 0

    # -- span lifecycle -----------------------------------------------------
    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a span; finishes (and is recorded) when the ``with`` exits."""
        parent = self._current()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            start=self.clock(),
            attributes=attributes,  # kwargs dict is already fresh and ours
        )
        stack = self._stack()
        stack.append(span)
        with self._lock:
            self._started += 1
        return _SpanContext(self, span)

    def record(self, name: str, start: float, end: float,
               **attributes: object) -> Span:
        """Record a pre-timed interval (caller already read the clock).

        Parented under the thread's currently open span, if any.  This is
        the cheap path for hot loops: no context-manager machinery, no
        extra clock reads.
        """
        parent = self._current()
        span = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            start=start,
            end=end,
            attributes=attributes,  # kwargs dict is already fresh and ours
        )
        with self._lock:
            self._started += 1
            self._completed += 1
            self._finished.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exited out of order; drop it wherever it sits
            stack.remove(span)
        with self._lock:
            self._completed += 1
            self._finished.append(span)

    # -- inspection ---------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """Finished spans still in the ring, oldest first.

        ``name`` filters to one span name.
        """
        with self._lock:
            out = list(self._finished)
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def iter_spans(self) -> Iterator[Span]:
        """Iterate over a stable copy of the finished-span ring."""
        return iter(self.spans())

    @property
    def spans_started(self) -> int:
        """Total spans ever opened (exact, survives ring eviction)."""
        with self._lock:
            return self._started

    @property
    def spans_finished(self) -> int:
        """Total spans ever finished (exact, survives ring eviction)."""
        with self._lock:
            return self._completed

    def clear(self) -> None:
        """Drop all retained finished spans (totals are preserved)."""
        with self._lock:
            self._finished.clear()

    # -- internals ----------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None
