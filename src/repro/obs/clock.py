"""Injectable clocks: the only module allowed to touch ``time.*``.

Every instrumented hot path in the repo receives its clock as a value
(constructor argument or :class:`~repro.obs.Telemetry` attribute) instead
of calling ``time.monotonic()``/``time.perf_counter()`` directly — lint
rule RL005 (``tools/lint_repro.py``) enforces this.  Injection buys two
things:

- **deterministic tests** — a :class:`FakeClock` makes span durations,
  deadlines, and latency histograms exact, so timing behaviour is
  assertable instead of flaky;
- **zero hidden cost** — a disabled telemetry path cannot accidentally
  pay for clock syscalls, because there is no ambient clock to reach for.

A clock is any zero-argument callable returning monotonic seconds as a
float.  :data:`SYSTEM_CLOCK` is the production default.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["Clock", "SYSTEM_CLOCK", "Sleep", "SYSTEM_SLEEP", "FakeClock"]

#: A clock is any ``() -> float`` returning monotonic seconds.
Clock = Callable[[], float]

#: The production clock (monotonic, unaffected by wall-clock jumps).
SYSTEM_CLOCK: Clock = time.monotonic

#: A sleeper is any ``(seconds: float) -> None``; injected alongside the
#: clock wherever code must wait (retry backoff in :mod:`repro.flow`), so
#: tests substitute :meth:`FakeClock.sleep` and never actually block.
Sleep = Callable[[float], None]

#: The production sleeper.
SYSTEM_SLEEP: Sleep = time.sleep


class FakeClock:
    """A manually-advanced clock for deterministic timing tests.

    ``clock()`` returns the current reading; :meth:`advance` moves it
    forward.  ``auto_step`` (optional) advances the clock by a fixed
    amount on every read, which makes "every span has nonzero duration"
    style tests trivial.
    """

    def __init__(self, start: float = 0.0, auto_step: float = 0.0) -> None:
        if auto_step < 0:
            raise ValueError(f"auto_step must be >= 0, got {auto_step}")
        self._now = float(start)
        self.auto_step = float(auto_step)

    def __call__(self) -> float:
        reading = self._now
        self._now += self.auto_step
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward (never backward — it is monotonic)."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)

    def sleep(self, seconds: float) -> None:
        """A :data:`Sleep` that advances the clock instead of blocking.

        Pass ``clock=fake, sleep=fake.sleep`` to code that waits (e.g. the
        flow runner's retry backoff) and the wait becomes an instantaneous,
        assertable clock jump.
        """
        self.advance(seconds)

    @property
    def now(self) -> float:
        """The current reading without consuming an ``auto_step``."""
        return self._now
