"""Unified observability: metrics registry, span tracing, exporters.

One :class:`Telemetry` object is the whole spine.  Components across the
stack (``InferenceEngine``, the serve layer, ``GuardedSpikingSystem``,
``SpikingSystem``) accept ``telemetry: Optional[Telemetry] = None``:

- ``None`` (the default) means telemetry is **off** — no clock reads, no
  spans, no shared registry.  Components that need thread-safe counters
  for correctness (the engine's run/retrace stats) fall back to a
  private registry, so disabling telemetry never reintroduces races.
- A :class:`Telemetry` instance turns on spans, timing histograms, and a
  shared registry that aggregates across every component it is passed to.

The clock is part of the facade and is *injected* everywhere (RL005: no
``time.*`` calls in instrumented hot paths), so a
:class:`~repro.obs.clock.FakeClock` drives fully deterministic tests.

Typical use::

    from repro.obs import Telemetry, to_prometheus

    telemetry = Telemetry()
    engine = make_inference_engine(deployed, telemetry=telemetry)
    engine.run(images)
    print(to_prometheus(telemetry.registry))
"""

from __future__ import annotations

from typing import Optional

from .clock import SYSTEM_CLOCK, SYSTEM_SLEEP, Clock, FakeClock, Sleep
from .export import EXPORT_SCHEMA_VERSION, from_json, to_json, to_prometheus
from .metrics import (
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    RegistrySnapshot,
)
from .tracing import Span, Tracer

__all__ = [
    "Telemetry",
    "Clock",
    "SYSTEM_CLOCK",
    "Sleep",
    "SYSTEM_SLEEP",
    "FakeClock",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "FamilySnapshot",
    "Span",
    "Tracer",
    "to_prometheus",
    "to_json",
    "from_json",
    "EXPORT_SCHEMA_VERSION",
]


class Telemetry:
    """The telemetry spine: one clock, one registry, one tracer.

    Pass a single instance to every component you want observed; their
    metrics aggregate in :attr:`registry` and their spans interleave in
    :attr:`tracer`.  Construct with a
    :class:`~repro.obs.clock.FakeClock` for deterministic tests.
    """

    def __init__(self, clock: Clock = SYSTEM_CLOCK,
                 reservoir_size: Optional[int] = None,
                 max_spans: Optional[int] = None) -> None:
        self.clock: Clock = clock
        registry_kwargs = {}
        if reservoir_size is not None:
            registry_kwargs["default_reservoir_size"] = reservoir_size
        self.registry = MetricsRegistry(**registry_kwargs)
        tracer_kwargs = {"clock": clock}
        if max_spans is not None:
            tracer_kwargs["max_spans"] = max_spans
        self.tracer = Tracer(**tracer_kwargs)

    def export_json(self, indent: int = 2) -> str:
        """The registry as a JSON document (see :func:`to_json`)."""
        return to_json(self.registry, indent=indent)

    def export_prometheus(self) -> str:
        """The registry in Prometheus text format (see :func:`to_prometheus`)."""
        return to_prometheus(self.registry)
