"""Thread-safe metric primitives and the registry that names them.

Three instrument kinds, chosen for the serving stack's needs:

- :class:`Counter` — monotonically increasing totals (requests served,
  spikes emitted).  Increments are lock-protected, so counters shared
  across serve replicas or guard callers never lose updates (plain
  ``x += 1`` on a Python attribute can drop increments when threads
  interleave between the read and the write).
- :class:`Gauge` — point-in-time levels (queue depth, estimated energy).
- :class:`Histogram` — a bounded *reservoir* of observations (latencies,
  batch sizes, per-step runtimes).  Memory is fixed at
  ``reservoir_size`` samples regardless of observation count; beyond the
  bound, Vitter's algorithm R keeps a uniform sample of everything seen,
  driven by a private seeded generator so runs are reproducible.
  ``count``/``total``/``min``/``max`` are tracked exactly.

:meth:`Histogram.snapshot` produces an immutable
:class:`HistogramSnapshot`; snapshots **merge** (deterministically, no
RNG) so per-replica histograms can be combined into one serving-wide
view whose quantiles are bounded by the inputs' extrema.

The :class:`MetricsRegistry` is the namespace: ``registry.counter(name,
**labels)`` returns the one live instrument for that (name, labels)
series, creating it on first use.  Re-registering a name with a
different kind is an error — a name means one thing forever.
"""

from __future__ import annotations

import random
import re
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "RegistrySnapshot",
    "FamilySnapshot",
]

#: Prometheus-compatible metric and label names.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default bound on retained histogram samples.
DEFAULT_RESERVOIR_SIZE = 512


class Counter:
    """A monotonically increasing total.  Thread-safe."""

    kind = "counter"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0; counters never decrease)."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; cannot inc by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level that can move both ways.  Thread-safe."""

    kind = "gauge"

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Shift the current level by ``delta`` (either sign)."""
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable, mergeable view of one histogram.

    ``samples`` is the sorted retained reservoir; ``count``/``total``/
    ``minimum``/``maximum`` are exact over *all* observations, retained
    or not.  Quantiles interpolate over the reservoir, so they are
    estimates bounded by the exact extrema.
    """

    count: int
    total: float
    minimum: Optional[float]
    maximum: Optional[float]
    samples: Tuple[float, ...]
    reservoir_size: int

    @property
    def mean(self) -> float:
        """Exact mean of every observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) over the reservoir.

        Returns ``nan`` for an empty snapshot.  Always lies within
        ``[minimum, maximum]`` — the reservoir is a subset of the
        observations and the exact extrema clamp the estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return float("nan")
        estimate = float(np.quantile(np.asarray(self.samples), q))
        return min(max(estimate, self.minimum), self.maximum)

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots into one (deterministic, RNG-free).

        Exact fields add; extrema take the wider bound.  The merged
        reservoir keeps every sample when they fit, otherwise it takes
        evenly-spaced picks from each side's *sorted* reservoir in
        proportion to the sides' observation counts — preserving each
        side's quantile structure, so merged quantiles stay within
        ``[min(minima), max(maxima)]``.
        """
        cap = max(self.reservoir_size, other.reservoir_size)
        combined = sorted(self.samples + other.samples)
        if len(combined) > cap:
            total_count = self.count + other.count
            share = self.count / total_count if total_count else 0.5
            take_self = min(len(self.samples), max(int(round(cap * share)), 0))
            take_other = min(len(other.samples), cap - take_self)
            take_self = min(len(self.samples), cap - take_other)
            combined = sorted(
                _evenly_spaced(sorted(self.samples), take_self)
                + _evenly_spaced(sorted(other.samples), take_other)
            )
        minima = [m for m in (self.minimum, other.minimum) if m is not None]
        maxima = [m for m in (self.maximum, other.maximum) if m is not None]
        return HistogramSnapshot(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(minima) if minima else None,
            maximum=max(maxima) if maxima else None,
            samples=tuple(combined),
            reservoir_size=cap,
        )


def _evenly_spaced(values: List[float], k: int) -> List[float]:
    """``k`` evenly-spaced elements of ``values`` (all of them if k >= len)."""
    if k >= len(values):
        return list(values)
    if k <= 0:
        return []
    indices = np.linspace(0, len(values) - 1, k).round().astype(int)
    return [values[i] for i in indices]


class Histogram:
    """Bounded-reservoir histogram.  Thread-safe.

    Holds at most ``reservoir_size`` samples.  The first
    ``reservoir_size`` observations are kept verbatim; afterwards,
    observation *i* replaces a uniformly random retained sample with
    probability ``reservoir_size / i`` (Vitter's algorithm R), so the
    reservoir is always a uniform sample of the full stream.  The
    replacement draw comes from a private seeded generator — reruns of a
    deterministic workload retain identical samples.
    """

    kind = "histogram"

    def __init__(self, reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 seed: int = 0) -> None:
        if reservoir_size < 1:
            raise ValueError(f"reservoir_size must be >= 1, got {reservoir_size}")
        self.reservoir_size = reservoir_size
        self._samples: List[float] = []
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # stdlib RNG, not numpy: observe() sits on serving hot paths and
        # Generator.integers costs microseconds per draw; randrange is
        # an order of magnitude cheaper and just as deterministic.
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._samples) < self.reservoir_size:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def snapshot(self) -> HistogramSnapshot:
        """An immutable point-in-time view (idempotent: no state changes)."""
        with self._lock:
            return HistogramSnapshot(
                count=self._count,
                total=self._total,
                minimum=self._min,
                maximum=self._max,
                samples=tuple(sorted(self._samples)),
                reservoir_size=self.reservoir_size,
            )


#: One registered series: (family name, sorted (label, value) pairs).
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


@dataclass(frozen=True)
class FamilySnapshot:
    """All series of one metric family at snapshot time."""

    name: str
    kind: str
    help: str
    #: ``(labels dict, value)`` — value is a float for counters/gauges
    #: and a :class:`HistogramSnapshot` for histograms.
    series: Tuple[Tuple[Dict[str, str], object], ...]


@dataclass(frozen=True)
class RegistrySnapshot:
    """A consistent point-in-time view of every family in a registry."""

    families: Tuple[FamilySnapshot, ...]

    def family(self, name: str) -> Optional[FamilySnapshot]:
        """The named family, or ``None`` if it was never registered."""
        for fam in self.families:
            if fam.name == name:
                return fam
        return None

    def names(self) -> List[str]:
        """All family names, sorted."""
        return sorted(fam.name for fam in self.families)


class MetricsRegistry:
    """The namespace of instruments: get-or-create by (name, labels).

    All three accessors are thread-safe and idempotent — any number of
    engines, replicas, or guard threads may ask for the same series and
    receive the same live instrument.  A name is bound to one kind for
    the registry's lifetime; asking for it as another kind raises.
    """

    def __init__(self, default_reservoir_size: int = DEFAULT_RESERVOIR_SIZE) -> None:
        self.default_reservoir_size = default_reservoir_size
        self._metrics: Dict[_SeriesKey, object] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- accessors ----------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The live :class:`Counter` for this series (created on first use)."""
        return self._get(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The live :class:`Gauge` for this series (created on first use)."""
        return self._get(name, "gauge", help, labels, Gauge)

    def histogram(self, name: str, help: str = "",
                  reservoir_size: Optional[int] = None, **labels: str) -> Histogram:
        """The live :class:`Histogram` for this series (created on first use)."""
        size = reservoir_size or self.default_reservoir_size
        return self._get(name, "histogram", help, labels,
                         lambda: Histogram(reservoir_size=size))

    def _get(self, name: str, kind: str, help: str, labels: Dict[str, str],
             factory) -> object:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        key: _SeriesKey = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            bound = self._kinds.get(name)
            if bound is not None and bound != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {bound}, "
                    f"cannot re-register as a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
                self._kinds[name] = kind
                if help:
                    self._help[name] = help
            elif help and name not in self._help:
                self._help[name] = help
        return metric

    # -- introspection ------------------------------------------------------
    def names(self) -> List[str]:
        """All registered family names, sorted."""
        with self._lock:
            return sorted(self._kinds)

    def snapshot(self) -> RegistrySnapshot:
        """A point-in-time view of every family (safe under concurrency)."""
        with self._lock:
            items = list(self._metrics.items())
            kinds = dict(self._kinds)
            helps = dict(self._help)
        by_family: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
        for (name, label_items), metric in sorted(items, key=lambda kv: kv[0]):
            labels = dict(label_items)
            if isinstance(metric, Histogram):
                value: object = metric.snapshot()
            else:
                value = metric.value  # Counter / Gauge
            by_family.setdefault(name, []).append((labels, value))
        families = tuple(
            FamilySnapshot(
                name=name,
                kind=kinds[name],
                help=helps.get(name, ""),
                series=tuple(series),
            )
            for name, series in sorted(by_family.items())
        )
        return RegistrySnapshot(families=families)
