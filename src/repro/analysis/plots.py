"""ASCII plotting — terminal-renderable stand-ins for the paper's figures.

No plotting library is available in this environment, so figures render as
character matrices: :func:`line_plot` for series (Fig. 1a, the Pareto
curve), building on :func:`repro.analysis.tables.render_histogram` for
distributions (Fig. 4).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

_MARKERS = "*o+x#@"


def line_plot(
    series: Dict[str, Sequence[float]],
    x_values: Sequence[float],
    width: int = 60,
    height: int = 16,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render one or more named series on a shared character canvas.

    Each series gets a marker from ``*o+x#@``; the legend maps them back.
    ``logy`` plots log10 of the values (for the Fig. 1a-style exponential
    curves).
    """
    if not series:
        raise ValueError("no series to plot")
    x_values = np.asarray(x_values, dtype=np.float64)
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} has {len(ys)} points for "
                             f"{len(x_values)} x values")
    if len(x_values) < 2:
        raise ValueError("need at least 2 points")

    transformed = {}
    for name, ys in series.items():
        ys = np.asarray(ys, dtype=np.float64)
        if logy:
            if np.any(ys <= 0):
                raise ValueError("logy requires positive values")
            ys = np.log10(ys)
        transformed[name] = ys

    all_y = np.concatenate(list(transformed.values()))
    y_min, y_max = float(all_y.min()), float(all_y.max())
    y_span = y_max - y_min or 1.0
    x_min, x_max = float(x_values.min()), float(x_values.max())
    x_span = x_max - x_min or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(transformed.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(x_values, ys):
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((y_max - y) / y_span * (height - 1)))
            canvas[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.3g}" if not logy else f"1e{y_max:.2f}"
    bottom_label = f"{y_min:.3g}" if not logy else f"1e{y_min:.2f}"
    lines.append(f"{top_label:>10} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{bottom_label:>10} ┤" + "".join(canvas[-1]))
    lines.append(" " * 12 + f"{x_min:<.3g}" + " " * max(width - 12, 1) + f"{x_max:.3g}")
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
