"""Accuracy metrics and the bookkeeping the paper's tables report.

Every table in the paper derives from three numbers per configuration:

- ``accuracy_without`` — quantized accuracy with traditional training,
- ``accuracy_with`` — quantized accuracy with the proposed method,
- ``ideal`` — the fp32 accuracy (Table 1);

from which "Recovered Acc." = with − without and "Acc. Drop" = with − ideal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.data import Dataset
from repro.nn.modules import Module


def _batched_logits(model: Module, dataset: Dataset, batch_size: int):
    """Yield ``(logits, labels)`` per batch, through a compiled plan.

    Eval loops dominate experiment wall-clock, so batches run through an
    :class:`~repro.runtime.engine.InferenceEngine` plan (float64, integer
    path off — bit-identical to the graph executor; untraceable topologies
    fall back to the graph transparently).  The engine is per-call, so
    weight updates between calls are always picked up.
    """
    from repro.runtime.engine import EngineConfig, InferenceEngine

    engine = InferenceEngine(
        model, EngineConfig(dtype=np.float64, int_path="off")
    )
    for start in range(0, len(dataset), batch_size):
        images = dataset.images[start : start + batch_size]
        labels = dataset.labels[start : start + batch_size]
        yield engine.run(images), labels


def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 256) -> float:
    """Top-1 accuracy (fraction in [0, 1]) of ``model`` on ``dataset``.

    The model is evaluated in eval mode and restored to its previous mode.
    """
    was_training = model.training
    model.eval()
    correct = 0
    try:
        for logits, labels in _batched_logits(model, dataset, batch_size):
            correct += int((logits.argmax(axis=1) == labels).sum())
    finally:
        model.train(was_training)
    return correct / len(dataset)


def top_k_accuracy(model: Module, dataset: Dataset, k: int = 5, batch_size: int = 256) -> float:
    """Top-k accuracy (fraction in [0, 1])."""
    was_training = model.training
    model.eval()
    hits = 0
    try:
        for logits, labels in _batched_logits(model, dataset, batch_size):
            top = np.argsort(-logits, axis=1)[:, :k]
            hits += int((top == labels[:, None]).any(axis=1).sum())
    finally:
        model.train(was_training)
    return hits / len(dataset)


def confusion_matrix(model: Module, dataset: Dataset, batch_size: int = 256) -> np.ndarray:
    """(num_classes × num_classes) count matrix, rows = true class."""
    num_classes = dataset.num_classes
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    was_training = model.training
    model.eval()
    try:
        for logits, labels in _batched_logits(model, dataset, batch_size):
            np.add.at(matrix, (labels, logits.argmax(axis=1)), 1)
    finally:
        model.train(was_training)
    return matrix


@dataclass(frozen=True)
class QuantizationOutcome:
    """One table cell group: the with/without/ideal accuracy triple.

    Accuracies are percentages (0–100), matching the paper's tables.
    """

    model: str
    bits: int
    accuracy_without: float
    accuracy_with: float
    ideal: float

    @property
    def recovered(self) -> float:
        """"Recovered Acc." — how much the proposed method wins back."""
        return self.accuracy_with - self.accuracy_without

    @property
    def drop(self) -> float:
        """"Acc. Drop" — remaining gap to the fp32 ideal (≥ 0 when lossy)."""
        return self.ideal - self.accuracy_with

    def row(self) -> dict:
        """Flat dict for table rendering."""
        return {
            "model": self.model,
            "bits": self.bits,
            "without": round(self.accuracy_without, 2),
            "with": round(self.accuracy_with, 2),
            "recovered": round(self.recovered, 2),
            "drop": round(self.drop, 2),
            "ideal": round(self.ideal, 2),
        }
