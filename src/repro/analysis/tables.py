"""Plain-text table rendering for benchmark output.

The benches print the same rows the paper's tables report; these helpers
keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one table cell: floats at fixed precision, the rest as-is."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[format_cell(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells for {len(headers)} headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_dict_table(
    rows: List[Dict[str, Cell]], columns: Sequence[str], title: str = "", precision: int = 2
) -> str:
    """Render a list of dicts, selecting and ordering ``columns``."""
    body = [[row.get(col, "") for col in columns] for row in rows]
    return render_table(columns, body, title=title, precision=precision)


def render_histogram(
    values, bins: int = 30, width: int = 50, title: str = ""
) -> str:
    """ASCII histogram — stands in for the paper's Fig. 4 panels."""
    import numpy as np

    values = np.asarray(values).ravel()
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.size else 1
    lines = [title] if title else []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / max(peak, 1)))
        lines.append(f"[{left:8.2f}, {right:8.2f}) {count:7d} {bar}")
    return "\n".join(lines)
