"""Parameter sweep utilities for benchmarks and ablations."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Sequence


@dataclass
class SweepResult:
    """All points of one sweep, each a (params, value) pair."""

    parameter_names: Sequence[str]
    points: List[Dict[str, Any]] = field(default_factory=list)

    def add(self, params: Dict[str, Any], **metrics: Any) -> None:
        self.points.append({**params, **metrics})

    def column(self, name: str) -> List[Any]:
        return [point[name] for point in self.points]

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        if not self.points:
            raise ValueError("sweep has no points")
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p[metric])


def grid(**axes: Iterable) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts.

    >>> grid(bits=[3, 4], scope=["per_layer"])
    [{'bits': 3, 'scope': 'per_layer'}, {'bits': 4, 'scope': 'per_layer'}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    fn: Callable[..., Dict[str, Any]], params_list: Sequence[Dict[str, Any]]
) -> SweepResult:
    """Evaluate ``fn(**params) -> metrics dict`` over every param set."""
    if not params_list:
        raise ValueError("empty parameter list")
    result = SweepResult(parameter_names=list(params_list[0]))
    for params in params_list:
        metrics = fn(**params)
        result.add(params, **metrics)
    return result
