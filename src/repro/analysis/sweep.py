"""Parameter sweep utilities for benchmarks and ablations.

Sweeps execute through the flow layer's map primitive
(:func:`repro.flow.run_map`), which gives them per-point failure routing:
``run_sweep(..., on_error="failsink")`` records a crashing point — params,
exception, traceback — in a :class:`~repro.flow.Failsink` and keeps
sweeping, instead of losing every completed point to one bad
configuration.  The strict default (``on_error="raise"``) preserves the
historical fail-fast behaviour.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.flow.failsink import Failsink
from repro.flow.runner import run_map


@dataclass
class SweepResult:
    """All points of one sweep, each a (params, value) pair.

    ``failures`` holds the failsink records of points that crashed when
    the sweep ran with ``on_error="failsink"`` (empty in strict mode).
    """

    parameter_names: Sequence[str]
    points: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[Any] = field(default_factory=list)

    def add(self, params: Dict[str, Any], **metrics: Any) -> None:
        self.points.append({**params, **metrics})

    def column(self, name: str) -> List[Any]:
        return [point[name] for point in self.points]

    def best(self, metric: str, maximize: bool = True) -> Dict[str, Any]:
        if not self.points:
            raise ValueError(
                f"cannot take best({metric!r}) of a sweep with no completed "
                "points"
                + (f" ({len(self.failures)} point(s) failed — see .failures)"
                   if self.failures else "")
            )
        missing = [p for p in self.points if metric not in p]
        if missing:
            available = sorted(self.points[0])
            raise ValueError(
                f"metric {metric!r} is absent from {len(missing)} sweep "
                f"point(s); available keys: {', '.join(available)}"
            )
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p[metric])


def grid(**axes: Iterable) -> List[Dict[str, Any]]:
    """Cartesian product of named axes as a list of param dicts.

    >>> grid(bits=[3, 4], scope=["per_layer"])
    [{'bits': 3, 'scope': 'per_layer'}, {'bits': 4, 'scope': 'per_layer'}]
    """
    names = list(axes)
    combos = itertools.product(*(list(axes[name]) for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def run_sweep(
    fn: Callable[..., Dict[str, Any]],
    params_list: Sequence[Dict[str, Any]],
    on_error: str = "raise",
    failsink: Optional[Failsink] = None,
) -> SweepResult:
    """Evaluate ``fn(**params) -> metrics dict`` over every param set.

    ``on_error="failsink"`` routes per-point exceptions to ``failsink``
    (one is created if not given) and keeps going; the records land in
    ``SweepResult.failures``.  The default ``"raise"`` propagates the
    first failure, as before.
    """
    if not params_list:
        raise ValueError("empty parameter list")
    if failsink is not None and on_error == "raise":
        on_error = "failsink"
    sink = failsink if failsink is not None else Failsink()
    result = SweepResult(parameter_names=list(params_list[0]))
    output = run_map(
        lambda params: fn(**params),
        params_list,
        step="run_sweep",
        failsink=sink,
        on_error=on_error,
    )
    for index, metrics in zip(output.indices, output.results):
        result.add(params_list[index], **metrics)
    result.failures = list(sink.records)
    return result
