"""repro.analysis — metrics, tables, sweeps and experiment orchestration."""

from repro.analysis.experiments import (
    FAST_SETTINGS,
    ExperimentSettings,
    ModelCache,
    fig1a_speed_vs_precision,
    fig1b_accuracy_loss,
    fig3_regularizer_forms,
    fig4_signal_distributions,
    table1_ideal_accuracy,
    table2_neuron_convergence,
    table3_weight_clustering,
    table4_combined,
    table5_system,
)
from repro.analysis.error_propagation import (
    LayerError,
    compare_propagation,
    error_amplification,
    measure_error_propagation,
)
from repro.analysis.metrics import (
    QuantizationOutcome,
    confusion_matrix,
    evaluate_accuracy,
    top_k_accuracy,
)
from repro.analysis.plots import line_plot
from repro.analysis.sweep import SweepResult, grid, run_sweep
from repro.analysis.tables import render_dict_table, render_histogram, render_table

__all__ = [
    "evaluate_accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "QuantizationOutcome",
    "ExperimentSettings",
    "FAST_SETTINGS",
    "ModelCache",
    "table1_ideal_accuracy",
    "table2_neuron_convergence",
    "table3_weight_clustering",
    "table4_combined",
    "table5_system",
    "fig1a_speed_vs_precision",
    "fig1b_accuracy_loss",
    "fig3_regularizer_forms",
    "fig4_signal_distributions",
    "render_table",
    "render_dict_table",
    "render_histogram",
    "line_plot",
    "SweepResult",
    "grid",
    "run_sweep",
    "LayerError",
    "measure_error_propagation",
    "error_amplification",
    "compare_propagation",
]
