"""Empirical verification of the paper's Eq. 4–5 error-propagation argument.

Sec. 3.1 argues that after Neuron Convergence training, the quantization
error ``Δo^i`` transmitted from layer to layer (Eq. 4) stays small because
signals are sparse and ranges uniform, so rounding errors do not amplify
as they propagate; Eq. 5 makes the matching argument for weight errors.
The paper supports this analytically but never measures it.  This module
does:

- run the float model and its quantized twin on the same batch,
- tap every inter-layer signal in both,
- report the *relative propagated error* per layer
  ``‖ô^i − o^i‖₁ / ‖o^i‖₁``

so the per-layer error profile (flat/attenuating vs exploding) can be
compared between traditionally- and convergence-trained networks — the
Eq. 4/5 claim as a measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.modules import QuantizedActivation
from repro.core.taps import SignalTap
from repro.nn.modules import Module
from repro.nn.tensor import Tensor, no_grad


@dataclass(frozen=True)
class LayerError:
    """Propagated quantization error at one inter-layer boundary."""

    layer: str
    index: int
    relative_error: float   # ‖ô − o‖₁ / ‖o‖₁
    float_magnitude: float  # mean |o| of the float reference


def _tap_signals(model: Module, images: np.ndarray) -> List[np.ndarray]:
    tap = SignalTap(model).attach()
    try:
        model.eval()
        with no_grad():
            model(Tensor(images))
        return [signal.data.copy() for signal in tap.signals]
    finally:
        tap.detach()


def _tap_quantized_signals(model: Module, images: np.ndarray) -> List[np.ndarray]:
    """Tap the outputs of QuantizedActivation modules of a deployed model."""
    quantizers = [
        module for _, module in model.named_modules()
        if isinstance(module, QuantizedActivation)
    ]
    if not quantizers:
        raise ValueError("deployed model has no quantized activations")
    captured: List[np.ndarray] = []
    removers = [
        module.register_forward_hook(lambda m, i, o: captured.append(o.data.copy()))
        for module in quantizers
    ]
    try:
        model.eval()
        with no_grad():
            model(Tensor(images))
        return captured
    finally:
        for remover in removers:
            remover()


def measure_error_propagation(
    model: Module,
    images: np.ndarray,
    signal_bits: int,
    signal_gain: Union[float, str] = 1.0,
    weight_bits: Optional[int] = None,
) -> List[LayerError]:
    """Per-layer propagated quantization error of ``model`` at M bits.

    ``weight_bits`` additionally quantizes weights (clustered) so the
    combined Eq. 4 + Eq. 5 propagation is measured; ``None`` isolates the
    signal (Eq. 4) path.
    """
    float_signals = _tap_signals(model, images)
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(
            signal_bits=signal_bits,
            weight_bits=weight_bits,
            weight_mode="clustered" if weight_bits is not None else "none",
            signal_gain=signal_gain,
        ),
        calibration_images=images if signal_gain == "auto" else None,
    )
    quantized_signals = _tap_quantized_signals(deployed, images)
    if len(quantized_signals) != len(float_signals):
        raise RuntimeError(
            f"tapped {len(float_signals)} float vs {len(quantized_signals)} "
            "quantized layers; model structure changed unexpectedly"
        )

    tap = SignalTap(model)
    names = tap.names
    errors = []
    for index, (reference, quantized) in enumerate(zip(float_signals, quantized_signals)):
        denom = float(np.abs(reference).sum())
        numer = float(np.abs(quantized - reference).sum())
        errors.append(
            LayerError(
                layer=names[index] if index < len(names) else f"layer{index}",
                index=index,
                relative_error=numer / denom if denom > 0 else 0.0,
                float_magnitude=float(np.abs(reference).mean()),
            )
        )
    return errors


def error_amplification(errors: List[LayerError]) -> float:
    """Last-layer error over first-layer error — >1 means amplification.

    The paper's Eq. 4 claim is that convergence-trained networks keep this
    near (or below) 1 while traditionally trained networks blow up.
    """
    if len(errors) < 2:
        raise ValueError("need at least two layers to measure amplification")
    first = errors[0].relative_error
    last = errors[-1].relative_error
    if first == 0.0:
        return float("inf") if last > 0 else 1.0
    return last / first


def compare_propagation(
    baseline: Module,
    proposed: Module,
    images: np.ndarray,
    signal_bits: int,
    baseline_gain: Union[float, str] = 1.0,
    proposed_gain: Union[float, str] = 1.0,
) -> dict:
    """Side-by-side Eq. 4 measurement for the paper's two training arms."""
    baseline_errors = measure_error_propagation(
        baseline, images, signal_bits, signal_gain=baseline_gain
    )
    proposed_errors = measure_error_propagation(
        proposed, images, signal_bits, signal_gain=proposed_gain
    )
    return {
        "baseline": baseline_errors,
        "proposed": proposed_errors,
        "baseline_final_error": baseline_errors[-1].relative_error,
        "proposed_final_error": proposed_errors[-1].relative_error,
        "baseline_amplification": error_amplification(baseline_errors),
        "proposed_amplification": error_amplification(proposed_errors),
    }
