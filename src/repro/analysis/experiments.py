"""Experiment orchestration: everything the benchmark harness needs.

Each ``tableN_*`` / ``figN_*`` function regenerates one of the paper's
tables or figures (see DESIGN.md §4 for the index).  Trained models are
the expensive ingredient — Table 2/4 alone need a dozen trainings — so
:class:`ModelCache` persists state dicts to disk keyed by the full
configuration; re-running a bench reuses them.

Scale note: the paper trains full-width networks on the real datasets for
(presumably) many GPU-hours.  :class:`ExperimentSettings` holds the
CPU-budget defaults (width multipliers, epochs, dataset sizes) under which
every experiment finishes in minutes while preserving the phenomena the
tables demonstrate.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import QuantizationOutcome, evaluate_accuracy
from repro.core.deployment import (
    DeploymentConfig,
    deploy_dynamic_fixed_point,
    deploy_model,
)
from repro.core.qat import Trainer, TrainerConfig
from repro.core.regularizers import regularizer_curve
from repro.core.taps import SignalTap
from repro.datasets.registry import load_dataset
from repro.models.registry import MODEL_DATASET, build_model, get_spec
from repro.nn.data import Dataset
from repro.nn.modules import Module
from repro.nn.serialization import StateDictError, load_state, save_state
from repro.nn.tensor import Tensor, no_grad
from repro.snc.cost import PAPER_TABLE5, evaluate_system_cost, table5_row

DEFAULT_CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", ".bench_cache")


@dataclass(frozen=True)
class ExperimentSettings:
    """CPU-budget scaling knobs shared by every experiment."""

    train_size: int = 1500
    test_size: int = 500
    seed: int = 0
    widths: Tuple[Tuple[str, float], ...] = (
        ("lenet", 1.0),
        ("alexnet", 0.25),
        ("resnet", 0.125),
    )
    epochs: Tuple[Tuple[str, int], ...] = (
        ("lenet", 12),
        ("alexnet", 14),
        ("resnet", 10),
    )
    strength: float = 1e-2
    alpha: float = 0.01
    cache_dir: str = DEFAULT_CACHE_DIR

    def width_of(self, model: str) -> float:
        return dict(self.widths)[model]

    def epochs_of(self, model: str) -> int:
        return dict(self.epochs)[model]


# Settings used by `pytest tests/` integration tests: small but still
# learning enough for the with/without ordering to be visible on LeNet.
FAST_SETTINGS = ExperimentSettings(
    train_size=600,
    test_size=300,
    widths=(("lenet", 1.0), ("alexnet", 0.2), ("resnet", 0.1)),
    epochs=(("lenet", 8), ("alexnet", 4), ("resnet", 3)),
)


class ModelCache:
    """Disk + memory cache of trained models, keyed by configuration."""

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._memory: Dict[str, Module] = {}

    @staticmethod
    def _key(model: str, penalty: str, bits: int, settings: ExperimentSettings) -> str:
        build = sorted(MODEL_BUILD_KWARGS.get(model, {}).items())
        overrides = sorted(MODEL_TRAIN_OVERRIDES.get(model, {}).items())
        parts = (
            f"{model}|{penalty}|{bits}|{settings.train_size}|{settings.seed}|"
            f"{settings.width_of(model)}|{settings.epochs_of(model)}|"
            f"{settings.strength}|{settings.alpha}|{build}|{overrides}"
        )
        return hashlib.sha1(parts.encode()).hexdigest()[:16]

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.npz")

    def get_or_train(
        self,
        model: str,
        penalty: str,
        bits: int,
        settings: ExperimentSettings,
        train_set: Dataset,
    ) -> Module:
        """Return a trained model, training (and persisting) if needed."""
        key = self._key(model, penalty, bits, settings)
        if key in self._memory:
            return self._memory[key]
        instance = build_model(
            model,
            width_multiplier=settings.width_of(model),
            rng=np.random.default_rng(settings.seed + 17),
            **MODEL_BUILD_KWARGS.get(model, {}),
        )
        path = self.path_for(key)
        loaded = False
        if os.path.exists(path):
            try:
                load_state(instance, path)
                loaded = True
            except StateDictError as error:
                # A truncated or stale archive must not wedge the harness:
                # drop it and retrain from scratch.
                print(f"discarding unreadable cache entry {path}: {error}")
                os.unlink(path)
        if not loaded:
            train_kwargs = {
                "strength": settings.strength,
                "alpha": settings.alpha,
                **MODEL_TRAIN_OVERRIDES.get(model, {}),
            }
            config = TrainerConfig(
                epochs=settings.epochs_of(model),
                penalty=penalty,
                bits=bits,
                seed=settings.seed,
                **train_kwargs,
            )
            Trainer(config).fit(instance, train_set)
            save_state(instance, path)
        instance.eval()
        self._memory[key] = instance
        return instance


_GLOBAL_CACHE: Optional[ModelCache] = None


def get_cache(settings: ExperimentSettings) -> ModelCache:
    """The process-wide :class:`ModelCache` for ``settings.cache_dir``."""
    global _GLOBAL_CACHE
    if _GLOBAL_CACHE is None or _GLOBAL_CACHE.directory != os.path.abspath(settings.cache_dir):
        _GLOBAL_CACHE = ModelCache(settings.cache_dir)
    return _GLOBAL_CACHE


def _data_for(model: str, settings: ExperimentSettings) -> Tuple[Dataset, Dataset]:
    return load_dataset(
        MODEL_DATASET[model],
        train_size=settings.train_size,
        test_size=settings.test_size,
        seed=settings.seed,
    )


def _trained(
    model: str, penalty: str, bits: int, settings: ExperimentSettings
) -> Tuple[Module, Dataset, Dataset]:
    train_set, test_set = _data_for(model, settings)
    cache = get_cache(settings)
    instance = cache.get_or_train(model, penalty, bits, settings, train_set)
    return instance, train_set, test_set


# Per-model experiment configuration (see DESIGN.md §6 and EXPERIMENTS.md
# "Reproduction notes"):
#
# - IFC conversion gain (DeploymentConfig.signal_gain): LeNet/AlexNet train
#   their activations to integer scale directly, so the paper's literal
#   gain-1 scheme applies; the 17-layer ResNet still benefits from the one
#   network-wide calibrated gain (a single hardware constant).
# - ResNet is built without batchnorm: the paper never mentions BN, and
#   the Eq. 3 penalty interacts destructively with it (it shrinks γ
#   instead of shaping the signal range).
# - ResNet's Eq. 3 uses α = 0 (range containment only): the sparsity slope
#   compounds over 17 layers and collapses training — the paper's
#   per-layer λ_i give exactly this freedom.
MODEL_SIGNAL_GAIN = {"lenet": 1.0, "alexnet": 1.0, "resnet": "auto"}
MODEL_BUILD_KWARGS: Dict[str, dict] = {
    "lenet": {},
    "alexnet": {},
    "resnet": {"use_batchnorm": False},
}
MODEL_TRAIN_OVERRIDES: Dict[str, dict] = {
    "lenet": {},
    "alexnet": {},
    "resnet": {"alpha": 0.0},
}


# ---------------------------------------------------------------------------
# Table 1 — model inventory and ideal accuracy
# ---------------------------------------------------------------------------

def table1_ideal_accuracy(settings: ExperimentSettings = ExperimentSettings()) -> List[dict]:
    """Model specs (the paper's exact dims) + our measured fp32 accuracy."""
    rows = []
    for model, _ in settings.widths:
        spec = get_spec(model)
        baseline, _, test_set = _trained(model, "none", 4, settings)
        rows.append(
            {
                "model": model,
                "dataset": spec.dataset,
                "conv_layers": len(spec.conv_layers),
                "fc_layers": len(spec.fc_layers),
                "paper_weights": spec.total_weights,
                "paper_ideal_acc": spec.ideal_accuracy,
                "measured_ideal_acc": evaluate_accuracy(baseline, test_set) * 100.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Table 2 — neuron (signal) quantization, with vs without Neuron Convergence
# ---------------------------------------------------------------------------

def table2_neuron_convergence(
    settings: ExperimentSettings = ExperimentSettings(),
    bit_widths: Tuple[int, ...] = (5, 4, 3),
    models: Tuple[str, ...] = ("lenet", "alexnet", "resnet"),
) -> List[QuantizationOutcome]:
    """Signals quantized to M bits; weights stay float (paper Sec. 4.2)."""
    outcomes = []
    for model in models:
        baseline, train_set, test_set = _trained(model, "none", 4, settings)
        ideal = evaluate_accuracy(baseline, test_set) * 100.0
        gain = MODEL_SIGNAL_GAIN[model]
        calibration = train_set.images[: min(256, len(train_set))]
        for bits in bit_widths:
            proposed, _, _ = _trained(model, "proposed", bits, settings)
            without_deployed, _ = deploy_model(
                baseline,
                DeploymentConfig(signal_bits=bits, weight_bits=None,
                                 weight_mode="none", signal_gain=gain),
                calibration_images=calibration,
            )
            with_deployed, _ = deploy_model(
                proposed,
                DeploymentConfig(signal_bits=bits, weight_bits=None,
                                 weight_mode="none", signal_gain=gain),
                calibration_images=calibration,
            )
            outcomes.append(
                QuantizationOutcome(
                    model=model,
                    bits=bits,
                    accuracy_without=evaluate_accuracy(without_deployed, test_set) * 100.0,
                    accuracy_with=evaluate_accuracy(with_deployed, test_set) * 100.0,
                    ideal=ideal,
                )
            )
    return outcomes


# ---------------------------------------------------------------------------
# Table 3 — weight quantization, with vs without Weight Clustering
# ---------------------------------------------------------------------------

def table3_weight_clustering(
    settings: ExperimentSettings = ExperimentSettings(),
    bit_widths: Tuple[int, ...] = (5, 4, 3),
    models: Tuple[str, ...] = ("lenet", "alexnet", "resnet"),
) -> List[QuantizationOutcome]:
    """Weights quantized to N bits; signals stay float (paper Sec. 4.3)."""
    outcomes = []
    for model in models:
        baseline, _, test_set = _trained(model, "none", 4, settings)
        ideal = evaluate_accuracy(baseline, test_set) * 100.0
        for bits in bit_widths:
            without_deployed, _ = deploy_model(
                baseline,
                DeploymentConfig(signal_bits=None, weight_bits=bits, weight_mode="naive"),
            )
            with_deployed, _ = deploy_model(
                baseline,
                DeploymentConfig(signal_bits=None, weight_bits=bits, weight_mode="clustered"),
            )
            outcomes.append(
                QuantizationOutcome(
                    model=model,
                    bits=bits,
                    accuracy_without=evaluate_accuracy(without_deployed, test_set) * 100.0,
                    accuracy_with=evaluate_accuracy(with_deployed, test_set) * 100.0,
                    ideal=ideal,
                )
            )
    return outcomes


# ---------------------------------------------------------------------------
# Table 4 — combined quantization + the 8-bit dynamic fixed point baseline
# ---------------------------------------------------------------------------

def table4_combined(
    settings: ExperimentSettings = ExperimentSettings(),
    bit_widths: Tuple[int, ...] = (5, 4, 3),
    models: Tuple[str, ...] = ("lenet", "alexnet", "resnet"),
) -> Dict[str, dict]:
    """Both quantizations together (paper Sec. 4.4).

    Returns per model: the 8-bit dynamic fixed point accuracy (the [23]
    baseline header row) and the list of outcomes at each bit width.
    """
    results: Dict[str, dict] = {}
    for model in models:
        baseline, train_set, test_set = _trained(model, "none", 4, settings)
        ideal = evaluate_accuracy(baseline, test_set) * 100.0
        dynamic_deployed, _ = deploy_dynamic_fixed_point(
            baseline, train_set.images[: min(256, len(train_set))], bits=8
        )
        dynamic8 = evaluate_accuracy(dynamic_deployed, test_set) * 100.0
        gain = MODEL_SIGNAL_GAIN[model]
        calibration = train_set.images[: min(256, len(train_set))]
        outcomes = []
        for bits in bit_widths:
            proposed, _, _ = _trained(model, "proposed", bits, settings)
            without_deployed, _ = deploy_model(
                baseline,
                DeploymentConfig(signal_bits=bits, weight_bits=bits,
                                 weight_mode="naive", signal_gain=gain),
                calibration_images=calibration,
            )
            with_deployed, _ = deploy_model(
                proposed,
                DeploymentConfig(signal_bits=bits, weight_bits=bits,
                                 weight_mode="clustered", signal_gain=gain),
                calibration_images=calibration,
            )
            outcomes.append(
                QuantizationOutcome(
                    model=model,
                    bits=bits,
                    accuracy_without=evaluate_accuracy(without_deployed, test_set) * 100.0,
                    accuracy_with=evaluate_accuracy(with_deployed, test_set) * 100.0,
                    ideal=ideal,
                )
            )
        results[model] = {"dynamic8": dynamic8, "ideal": ideal, "outcomes": outcomes}
    return results


# ---------------------------------------------------------------------------
# Table 5 — system speed / energy / area (cost model; no training involved)
# ---------------------------------------------------------------------------

def table5_system(models: Tuple[str, ...] = ("lenet", "alexnet", "resnet")) -> List[dict]:
    """Generated Table 5 rows (8-bit baseline + 4-bit + 3-bit, with ratios)."""
    rows = []
    for model in models:
        spec = get_spec(model)
        for bits in (8, 4, 3):
            row = table5_row(spec, bits)
            paper_speed, paper_energy, paper_area = PAPER_TABLE5[model][bits]
            row.update(
                paper_speed_mhz=paper_speed,
                paper_energy_uj=paper_energy,
                paper_area_mm2=paper_area,
                num_layers=spec.num_layers,
            )
            rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Accuracy/efficiency Pareto (synthesis of Tables 4 and 5 — the paper's
# title claim, "accurate AND high-speed", as one tradeoff curve)
# ---------------------------------------------------------------------------

def pareto_tradeoff(
    settings: ExperimentSettings = ExperimentSettings(),
    model: str = "lenet",
    bit_widths: Tuple[int, ...] = (8, 5, 4, 3, 2),
) -> List[dict]:
    """Accuracy (proposed pipeline) vs modeled speed/energy at each M = N.

    The 8-bit point uses the dynamic-fixed-point baseline accuracy (there
    is no 8-bit "proposed" network in the paper); other points use the
    Neuron-Convergence + Weight-Clustering deployment.
    """
    baseline, train_set, test_set = _trained(model, "none", 4, settings)
    spec = get_spec(model)
    gain = MODEL_SIGNAL_GAIN[model]
    calibration = train_set.images[: min(256, len(train_set))]
    rows = []
    for bits in bit_widths:
        if bits >= 8:
            deployed, _ = deploy_dynamic_fixed_point(baseline, calibration, bits=8)
        else:
            proposed, _, _ = _trained(model, "proposed", bits, settings)
            deployed, _ = deploy_model(
                proposed,
                DeploymentConfig(signal_bits=bits, weight_bits=bits,
                                 weight_mode="clustered", signal_gain=gain),
                calibration_images=calibration,
            )
        accuracy = evaluate_accuracy(deployed, test_set) * 100.0
        cost = evaluate_system_cost(spec, bits)
        rows.append(
            {
                "bits": bits,
                "accuracy": accuracy,
                "speed_mhz": cost.speed_mhz,
                "energy_uj": cost.energy_uj,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 1 — (a) speed vs neuron precision, (b) neuron vs weight acc. loss
# ---------------------------------------------------------------------------

def fig1a_speed_vs_precision(
    model: str = "lenet", bit_range: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
) -> List[dict]:
    """Computation speed at each neuron precision (Fig. 1a)."""
    spec = get_spec(model)
    return [
        {"bits": bits, "speed_mhz": evaluate_system_cost(spec, bits).speed_mhz}
        for bits in bit_range
    ]


def fig1b_accuracy_loss(
    settings: ExperimentSettings = ExperimentSettings(),
    model: str = "lenet",
    bit_range: Tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8),
) -> List[dict]:
    """Naive post-training quantization loss: neurons vs weights (Fig. 1b)."""
    baseline, _, test_set = _trained(model, "none", 4, settings)
    ideal = evaluate_accuracy(baseline, test_set) * 100.0
    rows = []
    for bits in bit_range:
        neurons_only, _ = deploy_model(
            baseline, DeploymentConfig(signal_bits=bits, weight_bits=None, weight_mode="none")
        )
        weights_only, _ = deploy_model(
            baseline, DeploymentConfig(signal_bits=None, weight_bits=bits, weight_mode="naive")
        )
        rows.append(
            {
                "bits": bits,
                "neuron_loss": ideal - evaluate_accuracy(neurons_only, test_set) * 100.0,
                "weight_loss": ideal - evaluate_accuracy(weights_only, test_set) * 100.0,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Figure 3 — regularizer forms (analytic, bit width 2)
# ---------------------------------------------------------------------------

def fig3_regularizer_forms(bits: int = 2, points: int = 201) -> Dict[str, np.ndarray]:
    """The four Fig. 3 curves sampled on o ∈ [−2^M, 2^M]."""
    span = float(2 ** bits)
    values = np.linspace(-span, span, points)
    return {
        "o": values,
        "none": regularizer_curve("none", values, bits),
        "l1": regularizer_curve("l1", values, bits),
        "truncated_l1": regularizer_curve("truncated_l1", values, bits),
        "proposed": regularizer_curve("proposed", values, bits),
    }


# ---------------------------------------------------------------------------
# Figure 4 — first-hidden-layer signal distribution per regularizer
# ---------------------------------------------------------------------------

def fig4_signal_distributions(
    settings: ExperimentSettings = ExperimentSettings(),
    model: str = "lenet",
    bits: int = 4,
    sample_size: int = 200,
) -> Dict[str, np.ndarray]:
    """Train LeNet under each Fig. 4 regularizer; tap the 1st hidden layer."""
    distributions: Dict[str, np.ndarray] = {}
    for penalty in ("none", "l1", "truncated_l1", "proposed"):
        trained, _, test_set = _trained(model, penalty, bits, settings)
        tap = SignalTap(trained).attach()
        try:
            trained.eval()
            with no_grad():
                trained(Tensor(test_set.images[:sample_size]))
            distributions[penalty] = tap.signals[0].data.ravel().copy()
        finally:
            tap.detach()
    return distributions


# ---------------------------------------------------------------------------
# Self-healing deployment: CLI healthcheck study
# ---------------------------------------------------------------------------

def healthcheck_study(
    settings: ExperimentSettings = ExperimentSettings(),
    model: str = "lenet",
    bits: int = 4,
    fault_rate: float = 0.0,
    variation_sigma: float = 0.0,
    spare_fraction: float = 0.1,
    seed: int = 0,
    remediate: bool = False,
    eval_samples: int = 100,
) -> Dict[str, object]:
    """Deploy a cached trained model, damage it, and run the health probe.

    Drives the full self-healing loop behind ``repro healthcheck``:
    build the spiking system (with spare crossbars provisioned), inject
    stuck-at faults at ``fault_rate`` (seeded — reproducible from the
    CLI), diagnose, optionally climb the remediation ladder, and measure
    accuracy at each stage.  Returns the reports plus accuracy numbers.
    """
    from repro.snc.faults import inject_faults_into_network
    from repro.snc.remediation import RemediationConfig
    from repro.snc.system import SpikingSystemConfig, build_spiking_system

    trained, train_set, test_set = _trained(model, "proposed", bits, settings)
    config = SpikingSystemConfig(
        signal_bits=bits,
        weight_bits=bits,
        input_bits=8,
        variation_sigma=variation_sigma,
        signal_gain=MODEL_SIGNAL_GAIN[model],
        spare_tile_fraction=spare_fraction,
        seed=seed,
    )
    system = build_spiking_system(trained, config, train_set.images[:200])
    subset = test_set.subset(min(eval_samples, len(test_set)))

    fault_report = None
    if fault_rate > 0:
        fault_report = inject_faults_into_network(system.network, fault_rate, seed=seed)
    probe_images = test_set.images[:20]
    health = system.health_check(images=probe_images, seed=seed)
    result: Dict[str, object] = {
        "model": model,
        "bits": bits,
        "fault_report": fault_report,
        "health": health,
        "accuracy": system.accuracy(subset),
        "software_accuracy": evaluate_accuracy(system.software_reference, subset),
    }
    if remediate:
        outcome = system.remediate(RemediationConfig(seed=seed))
        result["remediation"] = outcome
        result["health_after"] = system.health_check(images=probe_images, seed=seed)
        result["accuracy_after"] = system.accuracy(subset)
    result["engine"] = system.engine().runtime_stats()
    return result
