"""Layer-dimension specifications for the paper's three networks (Table 1).

The hardware evaluation (Eq. 1 crossbar counting and Table 5) depends only
on layer *dimensions* — filter count ``J``, kernel size ``s``, input depth
``d`` for convolutions; fan-in/fan-out for FC layers — not on trained
weights.  This module records the dimensions of the exact networks the
paper reports:

- **LeNet** (MNIST): 2 conv 5×5 + 2 FC, ≈7×10³ weights.
- **AlexNet** (CIFAR-10): 1 conv 5×5 + 4 conv 3×3 + 3 FC, ≈3.4×10⁵ weights.
- **ResNet** (CIFAR-10): 17 conv 3×3 + 1 FC, ≈1.2×10⁷ weights — i.e. the
  ResNet-18 topology adapted to 32×32 inputs.

The per-layer channel widths are reconstructed from the paper's totals
(the paper gives layer counts, kernel sizes and total weights; widths are
the standard choices that reproduce those totals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LayerSpec:
    """Dimensions of one network layer as deployed on crossbars.

    Attributes
    ----------
    kind:
        ``"conv"`` or ``"fc"``.
    out_features:
        Filter count ``J^i`` (conv) or output neurons (fc).
    in_depth:
        Input channel count ``d^i = J^{i-1}`` (conv) or input neurons (fc).
    kernel:
        Filter side ``s^i`` (conv); 1 for fc.
    spatial_out:
        Output spatial positions (H_out × W_out) — how many times the
        crossbar is activated per inference (conv); 1 for fc.
    """

    kind: str
    out_features: int
    in_depth: int
    kernel: int = 1
    spatial_out: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "fc"):
            raise ValueError(f"kind must be 'conv' or 'fc', got {self.kind!r}")
        if min(self.out_features, self.in_depth, self.kernel, self.spatial_out) < 1:
            raise ValueError("all dimensions must be >= 1")

    @property
    def rows(self) -> int:
        """Crossbar rows required: s × s × d (conv) or fan-in (fc)."""
        return self.kernel * self.kernel * self.in_depth

    @property
    def columns(self) -> int:
        """Crossbar columns required: J (conv) or fan-out (fc)."""
        return self.out_features

    @property
    def weight_count(self) -> int:
        """Number of synaptic weights in this layer."""
        return self.rows * self.columns


@dataclass(frozen=True)
class NetworkSpec:
    """A named sequence of layer specs plus dataset metadata (Table 1 row)."""

    name: str
    dataset: str
    input_shape: Tuple[int, int, int]
    layers: Tuple[LayerSpec, ...]
    ideal_accuracy: float  # the paper's fp32 accuracy for this network

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def conv_layers(self) -> List[LayerSpec]:
        return [layer for layer in self.layers if layer.kind == "conv"]

    @property
    def fc_layers(self) -> List[LayerSpec]:
        return [layer for layer in self.layers if layer.kind == "fc"]

    @property
    def total_weights(self) -> int:
        return sum(layer.weight_count for layer in self.layers)


def lenet_spec() -> NetworkSpec:
    """LeNet on MNIST: 2 conv 5×5 + 2 FC ≈ 7×10³ weights, 4 layers (Table 5)."""
    return NetworkSpec(
        name="lenet",
        dataset="mnist",
        input_shape=(1, 28, 28),
        layers=(
            LayerSpec("conv", out_features=6, in_depth=1, kernel=5, spatial_out=24 * 24),
            LayerSpec("conv", out_features=16, in_depth=6, kernel=5, spatial_out=8 * 8),
            LayerSpec("fc", out_features=16, in_depth=16 * 4 * 4),
            LayerSpec("fc", out_features=10, in_depth=16),
        ),
        ideal_accuracy=98.16,
    )


def alexnet_spec() -> NetworkSpec:
    """AlexNet on CIFAR-10: 1 conv 5×5 + 4 conv 3×3 + 3 FC ≈ 3.4×10⁵ weights."""
    return NetworkSpec(
        name="alexnet",
        dataset="cifar10",
        input_shape=(3, 32, 32),
        layers=(
            LayerSpec("conv", out_features=32, in_depth=3, kernel=5, spatial_out=32 * 32),
            LayerSpec("conv", out_features=32, in_depth=32, kernel=3, spatial_out=16 * 16),
            LayerSpec("conv", out_features=64, in_depth=32, kernel=3, spatial_out=16 * 16),
            LayerSpec("conv", out_features=64, in_depth=64, kernel=3, spatial_out=8 * 8),
            LayerSpec("conv", out_features=128, in_depth=64, kernel=3, spatial_out=8 * 8),
            LayerSpec("fc", out_features=96, in_depth=128 * 4 * 4),
            LayerSpec("fc", out_features=64, in_depth=96),
            LayerSpec("fc", out_features=10, in_depth=64),
        ),
        ideal_accuracy=85.35,
    )


def resnet_spec() -> NetworkSpec:
    """ResNet on CIFAR-10: 17 conv 3×3 + 1 FC ≈ 1.2×10⁷ weights (ResNet-18)."""
    layers: List[LayerSpec] = [
        LayerSpec("conv", out_features=64, in_depth=3, kernel=3, spatial_out=32 * 32)
    ]
    # Four stages of two basic blocks (two 3×3 convs each): 16 convs.
    stage_channels = (64, 128, 256, 512)
    stage_spatial = (32 * 32, 16 * 16, 8 * 8, 4 * 4)
    in_channels = 64
    for channels, spatial in zip(stage_channels, stage_spatial):
        for block in range(2):
            first_in = in_channels if block == 0 else channels
            layers.append(
                LayerSpec("conv", out_features=channels, in_depth=first_in,
                          kernel=3, spatial_out=spatial)
            )
            layers.append(
                LayerSpec("conv", out_features=channels, in_depth=channels,
                          kernel=3, spatial_out=spatial)
            )
        in_channels = channels
    layers.append(LayerSpec("fc", out_features=10, in_depth=512))
    return NetworkSpec(
        name="resnet",
        dataset="cifar10",
        input_shape=(3, 32, 32),
        layers=tuple(layers),
        ideal_accuracy=93.05,
    )


def paper_specs() -> List[NetworkSpec]:
    """All three Table 1 networks."""
    return [lenet_spec(), alexnet_spec(), resnet_spec()]
