"""ResNet for 32×32×3 inputs (the paper's CIFAR-10 ResNet).

Topology follows Table 1: seventeen 3×3 convolutions plus one FC layer —
a ResNet-18 adapted to 32×32 inputs (one stem convolution + four stages of
two basic blocks; each basic block holds two 3×3 convolutions).

Stride-2 stage transitions use a 1×1 convolution on the shortcut; the paper
counts only the seventeen 3×3 convolutions in its "Layer Num.", and the
crossbar cost model in :mod:`repro.snc` does the same.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


def _scaled(base: int, multiplier: float, minimum: int = 2) -> int:
    return max(minimum, int(round(base * multiplier)))


class BasicBlock(nn.Module):
    """Two 3×3 convolutions with an identity/projection shortcut.

    ``use_batchnorm`` selects between the standard BN-equipped block and a
    normalization-free block (bias-enabled convs, down-scaled init).  The
    paper never mentions normalization, and Neuron Convergence interacts
    with BN (the penalty shrinks γ instead of letting activations occupy
    the integer range), so the quantization experiments use the BN-free
    variant; the BN variant remains for float training studies.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        use_batchnorm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        bias = not use_batchnorm
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=bias, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(out_channels) if use_batchnorm else nn.Identity()
        self.relu1 = nn.ReLU()
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=bias, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels) if use_batchnorm else nn.Identity()
        if stride != 1 or in_channels != out_channels:
            shortcut_layers = [
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=bias, rng=rng)
            ]
            if use_batchnorm:
                shortcut_layers.append(nn.BatchNorm2d(out_channels))
            self.shortcut = nn.Sequential(*shortcut_layers)
        else:
            self.shortcut = nn.Identity()
        self.relu2 = nn.ReLU()
        if not use_batchnorm:
            # Residual accumulation doubles variance per block without BN;
            # damp the residual branch so deep stacks stay trainable.
            self.conv2.weight.data *= 0.5

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu2(out + self.shortcut(x))


class ResNetCifar(nn.Module):
    """ResNet-18-style network: stem conv + 4 stages × 2 blocks + FC.

    Parameters
    ----------
    width_multiplier:
        Scales the (64, 128, 256, 512) stage widths.  The default paper
        width is far too slow to train in numpy; benchmarks use ≈0.1–0.25.
    blocks_per_stage:
        Block counts per stage; (2, 2, 2, 2) matches the paper's 17 convs.
    """

    def __init__(
        self,
        width_multiplier: float = 1.0,
        num_classes: int = 10,
        blocks_per_stage: Sequence[int] = (2, 2, 2, 2),
        use_batchnorm: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        widths = [_scaled(c, width_multiplier, minimum=4) for c in (64, 128, 256, 512)]

        bias = not use_batchnorm
        self.stem = nn.Conv2d(3, widths[0], 3, padding=1, bias=bias, rng=rng)
        self.stem_bn = nn.BatchNorm2d(widths[0]) if use_batchnorm else nn.Identity()
        self.stem_relu = nn.ReLU()

        stages = []
        in_channels = widths[0]
        for stage_index, (width, count) in enumerate(zip(widths, blocks_per_stage)):
            for block_index in range(count):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(
                    BasicBlock(in_channels, width, stride=stride,
                               use_batchnorm=use_batchnorm, rng=rng)
                )
                in_channels = width
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(in_channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem_relu(self.stem_bn(self.stem(x)))
        x = self.stages(x)
        x = self.pool(x)
        return self.fc(x)

    def __repr__(self) -> str:
        return f"ResNetCifar(params={self.num_parameters()})"
