"""Model registry pairing trainable implementations with paper specs."""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.models.alexnet import AlexNetCifar
from repro.models.lenet import LeNet
from repro.models.resnet import ResNetCifar
from repro.models.specs import NetworkSpec, alexnet_spec, lenet_spec, resnet_spec
from repro.nn.modules import Module

_BUILDERS: Dict[str, Callable[..., Module]] = {
    "lenet": LeNet,
    "alexnet": AlexNetCifar,
    "resnet": ResNetCifar,
}

_SPECS: Dict[str, Callable[[], NetworkSpec]] = {
    "lenet": lenet_spec,
    "alexnet": alexnet_spec,
    "resnet": resnet_spec,
}

# Which synthetic dataset each model trains on (paper Table 1 mapping).
MODEL_DATASET: Dict[str, str] = {
    "lenet": "mnist-like",
    "alexnet": "cifar-like",
    "resnet": "cifar-like",
}


def available_models() -> list:
    """Names accepted by :func:`build_model` / :func:`get_spec`."""
    return sorted(_BUILDERS)


def build_model(
    name: str,
    width_multiplier: float = 1.0,
    num_classes: int = 10,
    rng: Optional[np.random.Generator] = None,
    **builder_kwargs,
) -> Module:
    """Instantiate a trainable model by name.

    Extra keyword arguments pass through to the model class (e.g.
    ``use_batchnorm=False`` for :class:`~repro.models.resnet.ResNetCifar`).
    """
    if name not in _BUILDERS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _BUILDERS[name](
        width_multiplier=width_multiplier, num_classes=num_classes, rng=rng,
        **builder_kwargs,
    )


def get_spec(name: str) -> NetworkSpec:
    """Return the paper's layer-dimension spec for the named model."""
    if name not in _SPECS:
        raise KeyError(f"unknown model {name!r}; available: {available_models()}")
    return _SPECS[name]()
