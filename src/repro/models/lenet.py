"""LeNet for 28×28 grayscale inputs (the paper's MNIST network).

Topology follows Table 1: two 5×5 convolutions and two fully connected
layers.  ``width_multiplier`` scales channel counts so the same topology
trains in seconds on one CPU core (the experiments measure quantization
*behaviour*, which is width-independent; see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


def _scaled(base: int, multiplier: float, minimum: int = 2) -> int:
    return max(minimum, int(round(base * multiplier)))


class LeNet(nn.Module):
    """2×conv(5×5) + 2×FC network for 28×28×1 inputs.

    Parameters
    ----------
    width_multiplier:
        Scales every hidden channel/neuron count (1.0 = paper dimensions).
    num_classes:
        Output classes (10 for digit tasks).
    rng:
        Generator for weight initialization; pass one for reproducibility.
    """

    def __init__(
        self,
        width_multiplier: float = 1.0,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        c1 = _scaled(6, width_multiplier)
        c2 = _scaled(16, width_multiplier)
        f1 = _scaled(16, width_multiplier, minimum=8)

        self.conv1 = nn.Conv2d(1, c1, 5, rng=rng)      # 28 → 24
        self.relu1 = nn.ReLU()
        self.pool1 = nn.MaxPool2d(2)                   # 24 → 12
        self.conv2 = nn.Conv2d(c1, c2, 5, rng=rng)     # 12 → 8
        self.relu2 = nn.ReLU()
        self.pool2 = nn.MaxPool2d(2)                   # 8 → 4
        self.flatten = nn.Flatten()
        self.fc1 = nn.Linear(c2 * 4 * 4, f1, rng=rng)
        self.relu3 = nn.ReLU()
        self.fc2 = nn.Linear(f1, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu1(self.conv1(x)))
        x = self.pool2(self.relu2(self.conv2(x)))
        x = self.flatten(x)
        x = self.relu3(self.fc1(x))
        return self.fc2(x)

    def __repr__(self) -> str:
        return f"LeNet(params={self.num_parameters()})"
