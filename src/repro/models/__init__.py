"""repro.models — the three network families the paper evaluates (Table 1).

Trainable implementations (:class:`LeNet`, :class:`AlexNetCifar`,
:class:`ResNetCifar`) accept a ``width_multiplier`` so they train on a CPU;
the paper-exact layer dimensions live in :mod:`repro.models.specs` and feed
the crossbar/cost models in :mod:`repro.snc`.
"""

from repro.models.alexnet import AlexNetCifar
from repro.models.lenet import LeNet
from repro.models.registry import (
    MODEL_DATASET,
    available_models,
    build_model,
    get_spec,
)
from repro.models.resnet import BasicBlock, ResNetCifar
from repro.models.specs import (
    LayerSpec,
    NetworkSpec,
    alexnet_spec,
    lenet_spec,
    paper_specs,
    resnet_spec,
)

__all__ = [
    "LeNet",
    "AlexNetCifar",
    "ResNetCifar",
    "BasicBlock",
    "build_model",
    "get_spec",
    "available_models",
    "MODEL_DATASET",
    "LayerSpec",
    "NetworkSpec",
    "lenet_spec",
    "alexnet_spec",
    "resnet_spec",
    "paper_specs",
]
