"""AlexNet-style network for 32×32×3 inputs (the paper's CIFAR-10 AlexNet).

Topology follows Table 1: one 5×5 convolution, four 3×3 convolutions and
three fully connected layers (8 compute layers, matching Table 5's
"Layer Num. = 8").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.nn.tensor import Tensor


def _scaled(base: int, multiplier: float, minimum: int = 2) -> int:
    return max(minimum, int(round(base * multiplier)))


class AlexNetCifar(nn.Module):
    """1×conv(5×5) + 4×conv(3×3) + 3×FC network for 32×32×3 inputs."""

    def __init__(
        self,
        width_multiplier: float = 1.0,
        num_classes: int = 10,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        c1 = _scaled(32, width_multiplier)
        c2 = _scaled(32, width_multiplier)
        c3 = _scaled(64, width_multiplier)
        c4 = _scaled(64, width_multiplier)
        c5 = _scaled(128, width_multiplier)
        f1 = _scaled(96, width_multiplier, minimum=16)
        f2 = _scaled(64, width_multiplier, minimum=16)

        self.conv1 = nn.Conv2d(3, c1, 5, padding=2, rng=rng)   # 32 → 32
        self.relu1 = nn.ReLU()
        self.pool1 = nn.MaxPool2d(2)                           # 32 → 16
        self.conv2 = nn.Conv2d(c1, c2, 3, padding=1, rng=rng)
        self.relu2 = nn.ReLU()
        self.conv3 = nn.Conv2d(c2, c3, 3, padding=1, rng=rng)
        self.relu3 = nn.ReLU()
        self.pool2 = nn.MaxPool2d(2)                           # 16 → 8
        self.conv4 = nn.Conv2d(c3, c4, 3, padding=1, rng=rng)
        self.relu4 = nn.ReLU()
        self.conv5 = nn.Conv2d(c4, c5, 3, padding=1, rng=rng)
        self.relu5 = nn.ReLU()
        self.pool3 = nn.MaxPool2d(2)                           # 8 → 4
        self.flatten = nn.Flatten()
        self.fc1 = nn.Linear(c5 * 4 * 4, f1, rng=rng)
        self.relu6 = nn.ReLU()
        self.fc2 = nn.Linear(f1, f2, rng=rng)
        self.relu7 = nn.ReLU()
        self.fc3 = nn.Linear(f2, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu1(self.conv1(x)))
        x = self.relu2(self.conv2(x))
        x = self.pool2(self.relu3(self.conv3(x)))
        x = self.relu4(self.conv4(x))
        x = self.pool3(self.relu5(self.conv5(x)))
        x = self.flatten(x)
        x = self.relu6(self.fc1(x))
        x = self.relu7(self.fc2(x))
        return self.fc3(x)

    def __repr__(self) -> str:
        return f"AlexNetCifar(params={self.num_parameters()})"
