"""Abstract interpretation of module graphs — no data is ever run.

The interpreter walks a :class:`~repro.nn.modules.Module` tree in
definition order (which, for every network in this repo, is execution
order; residual blocks get dedicated handlers) carrying an
:class:`AbstractSignal`: the symbolic per-sample shape, a sound interval
``[lo, hi]`` bounding every element the layer could ever produce, and the
quantization grid the values sit on (if any).  Each layer contributes one
:class:`LayerFact` — the per-layer record the rule engine
(:mod:`repro.check.rules`) evaluates.

Transfer functions are *sound over-approximations*: for a weight layer
the output bounds come from splitting the weight matrix into its positive
and negative parts (the classic interval matrix product), quantizers add
the ``±½/gain`` rounding slack before clipping to ``[0, (2^M − 1)/gain]``,
and zero-padding widens the input interval to include 0.  Whatever a real
forward pass computes is guaranteed to lie inside the propagated
interval, so anything the rules *prove* from these bounds (e.g. "every
output saturates the M-bit window") really holds.

When no input shape is known, :func:`structural_facts` builds the same
fact stream without shapes or intervals (registration-order walk), so the
purely structural rules (quantizer uniformity, weight grids, crossbar
budgets, mantissa fit) still run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.check.diagnostics import CheckReport
from repro.core.deployment import DynamicQuantizedActivation, _PrependInput
from repro.core.modules import InputQuantizer, QuantizedActivation
from repro.models.resnet import BasicBlock
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)
from repro.snc.mapping import SpikingConv2d, SpikingLinear


@dataclass(frozen=True)
class SignalQuant:
    """The integer grid an inter-layer signal sits on.

    ``value = counts / gain + offset`` with ``counts ∈ [0, 2^bits − 1]``;
    ``source`` distinguishes the network-wide activation quantizers
    (``"activation"``) from the input quantizer (``"input"``), which may
    legitimately use a different bit width.
    """

    bits: int
    gain: float
    offset: float = 0.0
    source: str = "activation"

    @property
    def top(self) -> int:
        """Largest representable spike count, ``2^bits − 1``."""
        return 2 ** self.bits - 1


@dataclass
class AbstractSignal:
    """What the interpreter knows about an inter-layer value.

    ``shape`` is the per-sample shape (no batch axis); ``lo``/``hi`` bound
    every element for every admissible network input; ``quant`` is the
    integer grid the values sit on, when they sit on one.
    """

    shape: Tuple[int, ...]
    lo: float
    hi: float
    quant: Optional[SignalQuant] = None


@dataclass
class LayerFact:
    """One layer's analysis record, consumed by the rule engine.

    ``kind`` is one of ``"input-quant"``, ``"weight"``, ``"act-quant"``,
    ``"act"``, ``"pool"``, ``"batchnorm"``, ``"flatten"``, ``"other"``.
    Shape/interval fields are ``None`` in structural (shape-free) mode.
    ``data`` carries rule-specific extras — weight grids, fan-in,
    crossbar tile counts, pre-activation bounds, …
    """

    path: str
    kind: str
    module_type: str
    in_shape: Optional[Tuple[int, ...]] = None
    out_shape: Optional[Tuple[int, ...]] = None
    lo: Optional[float] = None
    hi: Optional[float] = None
    data: dict = field(default_factory=dict)

    def describe(self) -> str:
        """One-line rendering for verbose reports."""
        parts = [f"{self.path or '<root>'} [{self.module_type}]"]
        if self.in_shape is not None:
            parts.append(f"{self.in_shape}→{self.out_shape}")
        if self.lo is not None:
            parts.append(f"range=[{self.lo:.4g}, {self.hi:.4g}]")
        for key in ("grid_bits", "fan_in", "crossbars", "carrier"):
            if key in self.data and self.data[key] is not None:
                parts.append(f"{key}={self.data[key]}")
        return " ".join(parts)


class _Abort(Exception):
    """Raised when a shape error makes further propagation meaningless."""


def _grid_info(module: Module) -> Optional[dict]:
    """Grid metadata for a layer carrying clustered/quantized weights.

    Mirrors :func:`repro.runtime.plan._grid_codes` but, instead of bailing
    out, records *why* the grid is violated so QW301 can report it.
    """
    scale = getattr(module, "_grid_scale", None)
    bits = getattr(module, "_grid_bits", None)
    if scale is None or bits is None or scale <= 0:
        return None
    codes = module.weight.data * (2 ** bits) / scale
    rounded = np.rint(codes)
    on_grid = bool(np.allclose(codes, rounded, atol=1e-6))
    max_abs_code = float(np.abs(rounded).max(initial=0.0))
    return {
        "bits": int(bits),
        "scale": float(scale),
        "on_grid": on_grid,
        "max_abs_code": max_abs_code,
        "in_range": max_abs_code <= 2 ** (bits - 1),
    }


def _bias_row_count(module: Module, grid: Optional[dict]) -> int:
    """Bias wordlines the Fig. 2 mapping needs (0 when bias-free/ungridded)."""
    bias = getattr(module, "bias", None)
    if bias is None or grid is None:
        return 0
    step = grid["scale"] / float(2 ** grid["bits"])
    codes = np.rint(bias.data / step)
    half = 2 ** (grid["bits"] - 1)
    if codes.size == 0:
        return 1
    return max(1, int(np.ceil(np.abs(codes).max() / half)))


def _weight_fact_data(module: Module, fan_in: int, out_features: int,
                      in_quant: Optional[SignalQuant]) -> dict:
    """Shared ``data`` payload for software Conv2d/Linear facts."""
    grid = _grid_info(module)
    return {
        "fan_in": int(fan_in),
        "out_features": int(out_features),
        "grid": grid,
        "rows": int(fan_in) + _bias_row_count(module, grid),
        "cols": int(out_features),
        "in_quant": in_quant,
        "padding": int(getattr(module, "padding", 0)),
        "spiking": False,
    }


def _spiking_fact_data(module: Module, in_quant: Optional[SignalQuant]) -> dict:
    """``data`` payload for crossbar-mapped layers (live array metadata)."""
    array = module.array
    fan_in = array.rows - module._n_bias_rows
    return {
        "fan_in": int(fan_in),
        "out_features": int(array.cols),
        "grid": {
            "bits": int(module.bits),
            "scale": float(module.scale),
            "on_grid": True,
            "max_abs_code": float(np.abs(array.weight_codes).max(initial=0.0)),
            "in_range": True,
        },
        "rows": int(array.rows),
        "cols": int(array.cols),
        "in_quant": in_quant,
        "padding": int(getattr(module, "padding", 0)),
        "spiking": True,
        "crossbars": int(array.num_crossbars),
        "spares_remaining": int(array.spare_tiles_remaining),
        "remapped_tiles": len(array.remapped_tiles),
        "device_levels": int(array.device.levels),
    }


def _interval_affine(w_mat: np.ndarray, bias, lo: float, hi: float) -> Tuple[float, float]:
    """Sound output bounds of ``W x + b`` for elementwise ``x ∈ [lo, hi]``.

    ``w_mat`` is ``(out, fan_in)``.  Positive weights pull toward ``hi``,
    negative toward ``lo``; the returned bounds are the extrema over all
    outputs.
    """
    pos = np.clip(w_mat, 0.0, None).sum(axis=1)
    neg = np.clip(w_mat, None, 0.0).sum(axis=1)
    b = bias if bias is not None else 0.0
    out_hi = pos * hi + neg * lo + b
    out_lo = pos * lo + neg * hi + b
    return float(np.min(out_lo)), float(np.max(out_hi))


def _conv_out_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> Tuple[int, int]:
    """Spatial output dims of a conv/pool window; may be non-positive."""
    oh = (h + 2 * padding - kernel) // stride + 1
    ow = (w + 2 * padding - kernel) // stride + 1
    return oh, ow


class Interpreter:
    """Walks a module tree, accumulating facts and shape diagnostics."""

    def __init__(self, report: CheckReport) -> None:
        self.report = report
        self.facts: List[LayerFact] = report.facts
        self.aborted = False

    # -- entry --------------------------------------------------------------
    def run(self, module: Module, signal: AbstractSignal) -> Optional[AbstractSignal]:
        """Interpret ``module`` on ``signal``; ``None`` after a shape abort."""
        try:
            return self.visit(module, "", signal)
        except _Abort:
            self.aborted = True
            return None

    # -- dispatch -----------------------------------------------------------
    def visit(self, module: Module, path: str, sig: AbstractSignal) -> AbstractSignal:
        """Apply one module's transfer function (dispatch on type)."""
        for cls, handler in _COMPOSITE_HANDLERS.items():
            if isinstance(module, cls):
                return handler(self, module, path, sig)
        for cls, method_name in _TRANSFERS.items():
            if isinstance(module, cls):
                return getattr(self, method_name)(module, path, sig)
        return self._generic(module, path, sig)

    def _child_path(self, path: str, name: str) -> str:
        return f"{path}.{name}" if path else name

    def _generic(self, module: Module, path: str, sig: AbstractSignal) -> AbstractSignal:
        """Containers fold their children in definition order; unknown
        leaves pass the signal through and are flagged by QS102."""
        children = list(module._modules.items())
        if not children:
            self._fact(path, "other", module, sig, sig, data={"unknown": True})
            return sig
        for name, child in children:
            sig = self.visit(child, self._child_path(path, name), sig)
        return sig

    # -- bookkeeping --------------------------------------------------------
    def _fact(self, path: str, kind: str, module: Module, sig_in: AbstractSignal,
              sig_out: AbstractSignal, data: Optional[dict] = None) -> LayerFact:
        fact = LayerFact(
            path=path,
            kind=kind,
            module_type=type(module).__name__,
            in_shape=sig_in.shape,
            out_shape=sig_out.shape,
            lo=sig_out.lo,
            hi=sig_out.hi,
            data=data or {},
        )
        self.facts.append(fact)
        return fact

    def _shape_error(self, path: str, message: str, hint: str = "", **details) -> None:
        self.report.add(
            "QS101", "error", path, message,
            hint or "fix the layer dimensions; the network cannot run as wired",
            **details,
        )
        raise _Abort

    def _require_rank(self, path: str, sig: AbstractSignal, rank: int, what: str) -> None:
        if len(sig.shape) != rank:
            self._shape_error(
                path,
                f"{what} expects a rank-{rank} per-sample input, got shape {sig.shape}",
            )

    # -- transfers: weight layers -------------------------------------------
    def _conv(self, m: Conv2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "Conv2d")
        c, h, w = sig.shape
        if c != m.in_channels:
            self._shape_error(
                path,
                f"Conv2d expects {m.in_channels} input channels, signal has {c}",
                expected=m.in_channels, got=c,
            )
        oh, ow = _conv_out_hw(h, w, m.kernel_size, m.stride, m.padding)
        if oh < 1 or ow < 1:
            self._shape_error(
                path,
                f"Conv2d kernel {m.kernel_size} (stride {m.stride}, padding "
                f"{m.padding}) produces an empty output from {h}×{w} input",
            )
        lo, hi = sig.lo, sig.hi
        if m.padding > 0:  # zero padding injects exact zeros into the window
            lo, hi = min(lo, 0.0), max(hi, 0.0)
        w_mat = m.weight.data.reshape(m.out_channels, -1)
        bias = m.bias.data if m.bias is not None else None
        out_lo, out_hi = _interval_affine(w_mat, bias, lo, hi)
        out = AbstractSignal((m.out_channels, oh, ow), out_lo, out_hi, None)
        fan_in = m.in_channels * m.kernel_size * m.kernel_size
        self._fact(path, "weight", m, sig, out,
                   _weight_fact_data(m, fan_in, m.out_channels, sig.quant))
        return out

    def _linear(self, m: Linear, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 1, "Linear")
        if sig.shape[0] != m.in_features:
            self._shape_error(
                path,
                f"Linear expects {m.in_features} input features, signal has {sig.shape[0]}",
                expected=m.in_features, got=sig.shape[0],
            )
        bias = m.bias.data if m.bias is not None else None
        out_lo, out_hi = _interval_affine(m.weight.data, bias, sig.lo, sig.hi)
        out = AbstractSignal((m.out_features,), out_lo, out_hi, None)
        self._fact(path, "weight", m, sig, out,
                   _weight_fact_data(m, m.in_features, m.out_features, sig.quant))
        return out

    def _spiking_conv(self, m: SpikingConv2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "SpikingConv2d")
        c, h, w = sig.shape
        if c != m.in_channels:
            self._shape_error(
                path,
                f"SpikingConv2d expects {m.in_channels} input channels, signal has {c}",
                expected=m.in_channels, got=c,
            )
        oh, ow = _conv_out_hw(h, w, m.kernel_size, m.stride, m.padding)
        if oh < 1 or ow < 1:
            self._shape_error(
                path,
                f"SpikingConv2d kernel {m.kernel_size} produces an empty output "
                f"from {h}×{w} input",
            )
        lo, hi = sig.lo, sig.hi
        if m.padding > 0:
            lo, hi = min(lo, 0.0), max(hi, 0.0)
        w_mat, bias = _spiking_weights(m)
        out_lo, out_hi = _interval_affine(w_mat, bias, lo, hi)
        out = AbstractSignal((m.out_channels, oh, ow), out_lo, out_hi, None)
        self._fact(path, "weight", m, sig, out, _spiking_fact_data(m, sig.quant))
        return out

    def _spiking_linear(self, m: SpikingLinear, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 1, "SpikingLinear")
        if sig.shape[0] != m.in_features:
            self._shape_error(
                path,
                f"SpikingLinear expects {m.in_features} input features, "
                f"signal has {sig.shape[0]}",
                expected=m.in_features, got=sig.shape[0],
            )
        w_mat, bias = _spiking_weights(m)
        out_lo, out_hi = _interval_affine(w_mat, bias, sig.lo, sig.hi)
        out = AbstractSignal((m.out_features,), out_lo, out_hi, None)
        self._fact(path, "weight", m, sig, out, _spiking_fact_data(m, sig.quant))
        return out

    # -- transfers: quantizers ----------------------------------------------
    def _input_quant(self, m: InputQuantizer, path: str, sig: AbstractSignal) -> AbstractSignal:
        g = float(m.gain)
        top = float(2 ** m.bits - 1)
        offset = float(m.offset)
        out_lo = min(max(sig.lo - 0.5 / g, offset), offset + top / g)
        out_hi = max(min(sig.hi + 0.5 / g, offset + top / g), offset)
        quant = SignalQuant(m.bits, g, offset, "input")
        out = AbstractSignal(sig.shape, out_lo, out_hi, quant)
        self._fact(path, "input-quant", m, sig, out, {
            "bits": m.bits, "gain": g, "offset": offset,
            "pre_lo": sig.lo, "pre_hi": sig.hi,
        })
        return out

    def _quant_act(self, m: QuantizedActivation, path: str, sig: AbstractSignal) -> AbstractSignal:
        # The inner module is ReLU in every deployment; anything else is
        # interpreted generically (and flagged by QS102 if unknown).
        if isinstance(m.inner, ReLU):
            pre = AbstractSignal(sig.shape, max(sig.lo, 0.0), max(sig.hi, 0.0), None)
        else:
            pre = self.visit(m.inner, self._child_path(path, "inner"), sig)
        if not m.enabled:
            out = AbstractSignal(pre.shape, pre.lo, pre.hi, None)
            self._fact(path, "act", m, sig, out, {"enabled": False})
            return out
        g = float(m.gain)
        top = float(2 ** m.bits - 1)
        out_lo = min(max(pre.lo - 0.5 / g, 0.0), top / g)
        out_hi = max(min(pre.hi + 0.5 / g, top / g), 0.0)
        quant = SignalQuant(m.bits, g, 0.0, "activation")
        out = AbstractSignal(pre.shape, out_lo, out_hi, quant)
        self._fact(path, "act-quant", m, sig, out, {
            "bits": m.bits, "gain": g, "enabled": True, "dynamic": False,
            "pre_lo": pre.lo, "pre_hi": pre.hi,
        })
        return out

    def _dyn_act(self, m: DynamicQuantizedActivation, path: str,
                 sig: AbstractSignal) -> AbstractSignal:
        if isinstance(m.inner, ReLU):
            pre = AbstractSignal(sig.shape, max(sig.lo, 0.0), max(sig.hi, 0.0), None)
        else:
            pre = self.visit(m.inner, self._child_path(path, "inner"), sig)
        out_lo = float(np.clip(pre.lo, m.fmt.min_value, m.fmt.max_value))
        out_hi = float(np.clip(pre.hi, m.fmt.min_value, m.fmt.max_value))
        out = AbstractSignal(pre.shape, out_lo, out_hi, None)
        self._fact(path, "act-quant", m, sig, out, {
            "bits": m.fmt.bits, "gain": None, "enabled": True, "dynamic": True,
            "pre_lo": pre.lo, "pre_hi": pre.hi,
        })
        return out

    # -- transfers: shape/range plumbing ------------------------------------
    def _relu(self, m: ReLU, path: str, sig: AbstractSignal) -> AbstractSignal:
        quant = sig.quant if sig.lo >= 0 else None
        out = AbstractSignal(sig.shape, max(sig.lo, 0.0), max(sig.hi, 0.0), quant)
        self._fact(path, "act", m, sig, out)
        return out

    def _maxpool(self, m: MaxPool2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "MaxPool2d")
        c, h, w = sig.shape
        oh, ow = _conv_out_hw(h, w, m.kernel_size, m.stride, 0)
        if oh < 1 or ow < 1:
            self._shape_error(
                path, f"MaxPool2d window {m.kernel_size} is larger than the {h}×{w} input"
            )
        out = AbstractSignal((c, oh, ow), sig.lo, sig.hi, sig.quant)
        self._fact(path, "pool", m, sig, out)
        return out

    def _avgpool(self, m: AvgPool2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "AvgPool2d")
        c, h, w = sig.shape
        oh, ow = _conv_out_hw(h, w, m.kernel_size, m.stride, 0)
        if oh < 1 or ow < 1:
            self._shape_error(
                path, f"AvgPool2d window {m.kernel_size} is larger than the {h}×{w} input"
            )
        out = AbstractSignal((c, oh, ow), sig.lo, sig.hi, None)
        self._fact(path, "pool", m, sig, out)
        return out

    def _gap(self, m: GlobalAvgPool2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "GlobalAvgPool2d")
        out = AbstractSignal((sig.shape[0],), sig.lo, sig.hi, None)
        self._fact(path, "pool", m, sig, out)
        return out

    def _flatten(self, m: Flatten, path: str, sig: AbstractSignal) -> AbstractSignal:
        size = int(np.prod(sig.shape))
        out = AbstractSignal((size,), sig.lo, sig.hi, sig.quant)
        self._fact(path, "flatten", m, sig, out)
        return out

    def _batchnorm(self, m: BatchNorm2d, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._require_rank(path, sig, 3, "BatchNorm2d")
        if sig.shape[0] != m.num_features:
            self._shape_error(
                path,
                f"BatchNorm2d expects {m.num_features} channels, signal has {sig.shape[0]}",
            )
        a = m.gamma.data / np.sqrt(m.running_var + m.eps)
        d = m.beta.data - a * m.running_mean
        candidates = np.stack([a * sig.lo + d, a * sig.hi + d])
        out = AbstractSignal(sig.shape, float(candidates.min()), float(candidates.max()), None)
        self._fact(path, "batchnorm", m, sig, out, {"training": m.training})
        return out

    def _dropout(self, m: Dropout, path: str, sig: AbstractSignal) -> AbstractSignal:
        self._fact(path, "other", m, sig, sig, {"training": m.training})
        return sig

    def _identity(self, m: Identity, path: str, sig: AbstractSignal) -> AbstractSignal:
        return sig


def _spiking_weights(m) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Intended ``(out, fan_in)`` weights and effective bias of a mapped
    layer, reconstructed from its crossbar codes (``w = scale·D/2^N``)."""
    array = m.array
    step = m.scale / float(2 ** m.bits)
    fan_in = array.rows - m._n_bias_rows
    taps = array.weight_codes[:fan_in]          # (fan_in, out)
    w_mat = taps.T.astype(np.float64) * step    # (out, fan_in)
    bias = None
    if m._n_bias_rows:
        bias = array.weight_codes[fan_in:].sum(axis=0).astype(np.float64) * step
    return w_mat, bias


# -- composite handlers ------------------------------------------------------

def _visit_residual(interp: Interpreter, m: Residual, path: str,
                    sig: AbstractSignal) -> AbstractSignal:
    body = interp.visit(m.body, interp._child_path(path, "body"), sig)
    short = interp.visit(m.shortcut, interp._child_path(path, "shortcut"), sig)
    if body.shape != short.shape:
        interp._shape_error(
            path,
            f"residual branches disagree: body {body.shape} vs shortcut {short.shape}",
        )
    merged = AbstractSignal(body.shape, body.lo + short.lo, body.hi + short.hi, None)
    return interp.visit(m.activation, interp._child_path(path, "activation"), merged)


def _visit_basic_block(interp: Interpreter, m: BasicBlock, path: str,
                       sig: AbstractSignal) -> AbstractSignal:
    join = interp._child_path
    out = sig
    for name in ("conv1", "bn1", "relu1", "conv2", "bn2"):
        out = interp.visit(getattr(m, name), join(path, name), out)
    short = interp.visit(m.shortcut, join(path, "shortcut"), sig)
    if out.shape != short.shape:
        interp._shape_error(
            path,
            f"residual branches disagree: body {out.shape} vs shortcut {short.shape}",
        )
    merged = AbstractSignal(out.shape, out.lo + short.lo, out.hi + short.hi, None)
    return interp.visit(m.relu2, join(path, "relu2"), merged)


_COMPOSITE_HANDLERS: Dict[Type[Module], Callable] = {
    Residual: _visit_residual,
    BasicBlock: _visit_basic_block,
}

# Dispatch table (order matters: subclasses before bases would go first;
# these types are disjoint).  Sequential and _PrependInput fold generically.
_TRANSFERS: Dict[Type[Module], str] = {
    Conv2d: "_conv",
    Linear: "_linear",
    SpikingConv2d: "_spiking_conv",
    SpikingLinear: "_spiking_linear",
    InputQuantizer: "_input_quant",
    QuantizedActivation: "_quant_act",
    DynamicQuantizedActivation: "_dyn_act",
    ReLU: "_relu",
    MaxPool2d: "_maxpool",
    AvgPool2d: "_avgpool",
    GlobalAvgPool2d: "_gap",
    Flatten: "_flatten",
    BatchNorm2d: "_batchnorm",
    Dropout: "_dropout",
    Identity: "_identity",
    Sequential: "_generic",
    _PrependInput: "_generic",
}


def analyze_module(
    module: Module,
    input_shape: Tuple[int, ...],
    input_range: Tuple[float, float] = (0.0, 1.0),
    target: str = "module",
) -> CheckReport:
    """Abstractly interpret ``module`` from a given input shape/interval.

    Returns a :class:`CheckReport` whose ``facts`` hold one
    :class:`LayerFact` per interpreted layer and whose diagnostics hold
    any shape errors (QS101) found along the way.  Rule evaluation is a
    separate pass (:func:`repro.check.rules.evaluate_rules`).
    """
    report = CheckReport(target)
    lo, hi = float(input_range[0]), float(input_range[1])
    if hi < lo:
        raise ValueError(f"input_range must be ordered, got ({lo}, {hi})")
    signal = AbstractSignal(tuple(int(d) for d in input_shape), lo, hi, None)
    Interpreter(report).run(module, signal)
    return report


# -- structural (shape-free) mode --------------------------------------------

_STRUCTURAL_SKIP = (Identity,)


def structural_facts(module: Module) -> List[LayerFact]:
    """Fact stream without shapes/intervals, from a registration-order walk.

    Used when no input shape is known: quantizer-uniformity, weight-grid,
    mantissa and crossbar rules still apply; interval rules are skipped
    (their fact fields stay ``None``).
    """
    facts: List[LayerFact] = []
    quant: List[Optional[SignalQuant]] = [None]  # boxed: closures mutate it

    def emit(path: str, kind: str, m: Module, data: dict) -> None:
        facts.append(LayerFact(path=path, kind=kind, module_type=type(m).__name__, data=data))

    for path, m in module.named_modules():
        if isinstance(m, _STRUCTURAL_SKIP):
            continue
        if isinstance(m, (SpikingConv2d, SpikingLinear)):
            emit(path, "weight", m, _spiking_fact_data(m, quant[0]))
            quant[0] = None
        elif isinstance(m, Conv2d):
            fan_in = m.in_channels * m.kernel_size * m.kernel_size
            emit(path, "weight", m, _weight_fact_data(m, fan_in, m.out_channels, quant[0]))
            quant[0] = None
        elif isinstance(m, Linear):
            emit(path, "weight", m,
                 _weight_fact_data(m, m.in_features, m.out_features, quant[0]))
            quant[0] = None
        elif isinstance(m, InputQuantizer):
            quant[0] = SignalQuant(m.bits, float(m.gain), float(m.offset), "input")
            emit(path, "input-quant", m,
                 {"bits": m.bits, "gain": float(m.gain), "offset": float(m.offset)})
        elif isinstance(m, QuantizedActivation):
            if m.enabled:
                quant[0] = SignalQuant(m.bits, float(m.gain), 0.0, "activation")
                emit(path, "act-quant", m,
                     {"bits": m.bits, "gain": float(m.gain), "enabled": True,
                      "dynamic": False})
            else:
                emit(path, "act", m, {"enabled": False})
        elif isinstance(m, DynamicQuantizedActivation):
            quant[0] = None
            emit(path, "act-quant", m,
                 {"bits": m.fmt.bits, "gain": None, "enabled": True, "dynamic": True})
        elif isinstance(m, (BatchNorm2d, Dropout)):
            emit(path, "other", m, {"training": m.training})
            if isinstance(m, BatchNorm2d):
                quant[0] = None
        elif isinstance(m, (AvgPool2d, GlobalAvgPool2d)):
            emit(path, "pool", m, {})
            quant[0] = None
    return facts
