"""Structured diagnostics for the static deployment verifier.

Every rule violation the checker can prove (or suspect) becomes one
:class:`Diagnostic` — a rule id, a severity, the layer path it anchors to,
a human-readable message and a fix hint.  A :class:`CheckReport` collects
the diagnostics for one check target (a module graph or a
:class:`~repro.models.specs.NetworkSpec`) and is what the CLI renders,
what :func:`~repro.core.deployment.deploy_model` gates on, and what
:class:`~repro.runtime.engine.InferenceEngine` consults before tracing.

Severity policy
---------------
``error``
    A proven violation of a deployment invariant: the network cannot be
    (or must not be) programmed onto the SNC as-is.  Deployment refuses.
``warning``
    A property that degrades the deployment (silent float64 fallback on
    the integer fast path, exhausted spare-tile headroom) but does not
    make it incorrect.
``info``
    Worst-case observations that are by-design acceptable (e.g. signal
    saturation under adversarial inputs — calibration deliberately trades
    clipping for resolution).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "info")

#: One-line description of every rule the checker can emit, keyed by rule
#: id.  ``docs/static_analysis.md`` documents each in full; a test keeps
#: the two in sync.
RULES: Dict[str, str] = {
    "QS101": "layer shapes are inconsistent (channel/feature mismatch or empty output)",
    "QS102": "module type unknown to the verifier; treated as identity",
    "QS103": "stochastic/normalization layer left in training mode",
    "QS201": "signal range overflow: every output provably saturates the M-bit window",
    "QS202": "worst-case signals may clip at the top of the M-bit window",
    "QS210": "inter-layer signal quantizers are not uniform (mixed M or gain)",
    "QS220": "requantize scale is off the power-of-two grid required by shift mode",
    "QS221": "requantize shift falls outside the provable [0, 62] range",
    "QW301": "weights are off the N-bit fixed-point grid (Eq. 6) or exceed ±2^(N−1)",
    "QW302": "weight bit widths are not uniform across layers",
    "QI401": "integer fast path exceeds the float32 mantissa; falls back to float64 carrier",
    "QI402": "layer cannot take the integer fast path; runs through the float path",
    "QC501": "crossbar budget overrun (Eq. 1 tile count exceeds the configured maximum)",
    "QC502": "weight codes are not representable in the memristor conductance range",
    "QC503": "no spare-tile headroom remains for remediation",
    "PL601": "worst-case integer GEMM accumulator can overflow its declared carrier",
    "PL602": "copy program or pooled buffers alias (overlapping live memory)",
    "PL603": "step boundary breaks a layout, counts-window, or dtype contract",
    "PL604": "shift epilogue infeasible (scale off the pow2 grid or shift out of range)",
    "PL605": "plan touches buffers outside its declared pre-allocated working set",
    "QT701": "temporal window configuration invalid (stride exceeds window, events dropped)",
    "QT702": "event counts saturate the M-bit window within some sliding window",
    "QT703": "stream stride outpaces the simulated pipeline (real-time violation)",
    "QT704": "temporal binning bits disagree with the deployed input quantizer",
    "QN801": "NIR archive carries the wrong format tag or an unsupported version",
    "QN802": "NIR node kind is outside the documented vocabulary",
    "QN803": "NIR node arrays are missing or inconsistent with declared attributes",
    "QN804": "NIR graph is malformed (dangling child/edge references or missing root)",
    "QN805": "NIR quantized activations are not uniform (mixed M bits or gain)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier.

    Attributes
    ----------
    rule:
        Rule id (key of :data:`RULES`), e.g. ``"QS201"``.
    severity:
        ``"error"`` | ``"warning"`` | ``"info"``.
    layer:
        Dotted module path (or spec layer name) the finding anchors to;
        empty string for network-wide findings.
    message:
        What was proven/suspected, with the concrete numbers.
    hint:
        How to fix or silence it.
    details:
        Machine-readable extras (bounds, tile counts, dtypes, …).
    """

    rule: str
    severity: str
    layer: str
    message: str
    hint: str = ""
    details: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {self.severity!r}")
        if self.rule not in RULES:
            raise ValueError(f"unknown rule id {self.rule!r}")

    def format(self) -> str:
        """Render as one (possibly two) human-readable lines."""
        where = self.layer or "<network>"
        line = f"[{self.severity}] {self.rule} @ {where}: {self.message}"
        if self.hint:
            line += f"\n    hint: {self.hint}"
        return line

    def to_dict(self) -> dict:
        """JSON-serializable form (details coerced to plain types)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "layer": self.layer,
            "message": self.message,
            "hint": self.hint,
            "details": {k: _plain(v) for k, v in dict(self.details).items()},
        }


def _plain(value):
    """Coerce numpy scalars and odd types to JSON-friendly ones."""
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (ValueError, TypeError):  # pragma: no cover - arrays in details
            return str(value)
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


class CheckReport:
    """All diagnostics for one check target, with severity accessors.

    ``target`` names what was checked (``"lenet (spec)"``,
    ``"deployed:LeNet"``, …); ``facts`` optionally carries the per-layer
    analysis records (:class:`~repro.check.abstract.LayerFact`) that the
    rules were evaluated on, for verbose rendering.
    """

    def __init__(self, target: str, diagnostics: Iterable[Diagnostic] = (), facts=None) -> None:
        self.target = target
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        self.facts = list(facts) if facts is not None else []

    # -- construction -------------------------------------------------------
    def add(
        self,
        rule: str,
        severity: str,
        layer: str,
        message: str,
        hint: str = "",
        **details,
    ) -> Diagnostic:
        """Append a diagnostic and return it."""
        diag = Diagnostic(rule, severity, layer, message, hint, details)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "CheckReport") -> None:
        """Absorb another report's diagnostics and facts."""
        self.diagnostics.extend(other.diagnostics)
        self.facts.extend(other.facts)

    def suppressed(self, rules: Iterable[str]) -> "CheckReport":
        """A copy of this report with the given rule ids removed."""
        drop = set(rules)
        kept = [d for d in self.diagnostics if d.rule not in drop]
        return CheckReport(self.target, kept, self.facts)

    # -- accessors ----------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def infos(self) -> List[Diagnostic]:
        """Info-severity diagnostics."""
        return [d for d in self.diagnostics if d.severity == "info"]

    @property
    def has_errors(self) -> bool:
        """True when any error-severity diagnostic is present."""
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def ok(self) -> bool:
        """True when the target passed (no errors; warnings allowed)."""
        return not self.has_errors

    def by_rule(self, rule: str) -> List[Diagnostic]:
        """All diagnostics carrying the given rule id."""
        return [d for d in self.diagnostics if d.rule == rule]

    # -- rendering ----------------------------------------------------------
    def summary(self, verbose: bool = False) -> str:
        """Human-readable report: one header plus one block per finding."""
        verdict = "OK" if self.ok else "FAIL"
        header = (
            f"check {self.target}: {verdict} — {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s), {len(self.infos)} info"
        )
        lines = [header]
        order = {severity: i for i, severity in enumerate(SEVERITIES)}
        for diag in sorted(self.diagnostics, key=lambda d: order[d.severity]):
            lines.append("  " + diag.format().replace("\n", "\n  "))
        if verbose and self.facts:
            lines.append("  layer facts:")
            for fact in self.facts:
                lines.append(f"    {fact.describe()}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole report."""
        return {
            "target": self.target,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return (
            f"CheckReport({self.target!r}, errors={len(self.errors)}, "
            f"warnings={len(self.warnings)}, infos={len(self.infos)})"
        )
