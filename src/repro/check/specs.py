"""Static checking of :class:`~repro.models.specs.NetworkSpec` dimensions.

A spec carries only layer dimensions — no weights, no quantizers — so the
check synthesizes the fact stream a fully deployed network *would*
produce (uniform M-bit signals between layers, N-bit weight grids, Fig. 2
crossbar mapping without bias rows, matching
:mod:`repro.analysis.cost`) and reuses the rule engine: dimension
consistency (QS101), worst-case integer-GEMM mantissa fit (QI401),
crossbar budget per Eq. 1 (QC501), and conductance representability
(QC502).  This is what ``repro check --specs`` and the CI check job run
over every registered model.
"""

from __future__ import annotations

from typing import Optional

from repro.check.abstract import LayerFact, SignalQuant
from repro.check.diagnostics import CheckReport
from repro.check.rules import CheckConfig, evaluate_rules
from repro.models.specs import NetworkSpec

#: Paper defaults (Sec 4.1): M = N = 4.
DEFAULT_SIGNAL_BITS = 4
DEFAULT_WEIGHT_BITS = 4


def _check_dimension_continuity(report: CheckReport, spec: NetworkSpec) -> None:
    """Adjacent layers must agree on the features they hand over."""
    for i in range(1, len(spec.layers)):
        prev, layer = spec.layers[i - 1], spec.layers[i]
        name = f"layers[{i}]"
        if layer.kind == "conv":
            if layer.in_depth != prev.out_features:
                report.add(
                    "QS101", "error", name,
                    f"conv expects in_depth == previous out_features "
                    f"({prev.out_features}), got {layer.in_depth}",
                    "fix the spec's channel widths",
                    expected=prev.out_features, got=layer.in_depth,
                )
        elif prev.kind == "fc":
            if layer.in_depth != prev.out_features:
                report.add(
                    "QS101", "error", name,
                    f"fc expects in_depth == previous out_features "
                    f"({prev.out_features}), got {layer.in_depth}",
                    "fix the spec's fan-in",
                    expected=prev.out_features, got=layer.in_depth,
                )
        else:
            # fc after conv: fan-in is out_features × spatial positions,
            # so it must at least be a multiple of the channel count.
            if layer.in_depth % prev.out_features != 0:
                report.add(
                    "QS101", "error", name,
                    f"fc fan-in {layer.in_depth} is not a multiple of the "
                    f"previous conv's {prev.out_features} channels",
                    "fix the spec's flatten dimensions",
                    channels=prev.out_features, got=layer.in_depth,
                )


def _spec_facts(spec: NetworkSpec, signal_bits: int, weight_bits: int) -> list:
    """The fact stream of the spec's fully quantized deployment.

    Every layer reads M-bit counts and (except the classifier tail, which
    stays float — mirroring ``deploy_model``, where only ReLUs gain
    quantizers) feeds an M-bit quantizer; weights sit on the N-bit grid.
    """
    quant = SignalQuant(signal_bits, 1.0, 0.0, "activation")
    facts = []
    for i, layer in enumerate(spec.layers):
        name = f"layers[{i}]"
        facts.append(LayerFact(
            path=name,
            kind="weight",
            module_type="conv" if layer.kind == "conv" else "fc",
            data={
                "fan_in": layer.rows,
                "out_features": layer.columns,
                "grid": {
                    "bits": weight_bits, "scale": 1.0, "on_grid": True,
                    "max_abs_code": float(2 ** (weight_bits - 1)),
                    "in_range": True,
                },
                "rows": layer.rows,
                "cols": layer.columns,
                "in_quant": quant,
                "padding": 0,
                "spiking": False,
            },
        ))
        if i < len(spec.layers) - 1:
            facts.append(LayerFact(
                path=f"{name}.act",
                kind="act-quant",
                module_type="QuantizedActivation",
                data={"bits": signal_bits, "gain": 1.0, "enabled": True,
                      "dynamic": False},
            ))
    return facts


def check_spec(
    spec: NetworkSpec,
    signal_bits: int = DEFAULT_SIGNAL_BITS,
    weight_bits: int = DEFAULT_WEIGHT_BITS,
    config: Optional[CheckConfig] = None,
) -> CheckReport:
    """Statically verify one paper spec at the given (M, N) deployment.

    Returns the rule engine's :class:`CheckReport`; ``repro check`` and the
    CI job fail on any error-severity diagnostic.
    """
    config = config or CheckConfig()
    report = CheckReport(f"{spec.name} (spec, M={signal_bits}, N={weight_bits})")
    _check_dimension_continuity(report, spec)
    report.facts.extend(_spec_facts(spec, signal_bits, weight_bits))
    evaluate_rules(report, config)
    if config.suppress:
        report = report.suppressed(config.suppress)
    return report
