"""Static checks for the temporal (event-driven) serving path (QT7xx).

The frame-path rules prove properties of a module graph; these prove
properties of a *windowing configuration* against its context — the
deployed input precision, the event streams it will bin, and the
simulated hardware pipeline that has to keep up with the stride.  All
four rules run before a single window is served, from the same raw
numbers a CLI or config file would supply (so a bad config is a
diagnostic, not a crash).

- **QT701** (error) — the window geometry itself is invalid:
  non-positive window/stride, or a stride longer than the window (the
  gap between consecutive windows would silently drop events).
- **QT702** (warning) — measured saturation: some sliding window of the
  supplied streams holds more events on one pixel than the M-bit count
  window ``2^M − 1`` can represent, so binning provably clips.
- **QT703** (error) — real-time violation: the simulated layer pipeline
  (:func:`~repro.snc.temporal.stream_timing`) completes windows slower
  than the stride delivers them, so a live session falls behind without
  bound.
- **QT704** (error) — precision mismatch: the binning bits disagree with
  the deployed input quantizer's bits, so a saturated count does not map
  to the quantizer's full scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.check.diagnostics import CheckReport

__all__ = ["check_temporal"]


def check_temporal(
    window_us: int,
    stride_us: int,
    signal_bits: int,
    *,
    input_bits: Optional[int] = None,
    streams: Sequence = (),
    spec=None,
    profile=None,
    nominal_windows: int = 64,
    target: str = "temporal",
) -> CheckReport:
    """Statically verify a temporal serving configuration.

    Parameters
    ----------
    window_us, stride_us, signal_bits:
        The raw windowing numbers (deliberately *unvalidated* — QT701
        reports what a :class:`~repro.snc.temporal.TemporalConfig`
        constructor would reject).
    input_bits:
        The deployed system's input quantizer precision
        (``system.config.input_bits``); enables QT704.
    streams:
        Event streams the configuration will serve; enables the QT702
        saturation measurement.
    spec:
        A :class:`~repro.models.specs.NetworkSpec`; enables the QT703
        real-time check via the pipeline timing model (``profile``
        optionally picks the speed profile, ``nominal_windows`` sizes
        the simulated run).
    """
    report = CheckReport(target)

    geometry_ok = True
    if window_us < 1 or stride_us < 1:
        geometry_ok = False
        report.add(
            "QT701", "error", "",
            f"window_us={window_us} and stride_us={stride_us} must both be "
            f"positive",
            hint="pick a positive window and stride (defaults: 25000/12500)",
            window_us=window_us, stride_us=stride_us,
        )
    elif stride_us > window_us:
        geometry_ok = False
        report.add(
            "QT701", "error", "",
            f"stride_us ({stride_us}) exceeds window_us ({window_us}): "
            f"events in the {stride_us - window_us}µs gap between "
            f"consecutive windows are never binned",
            hint="use stride_us <= window_us so windows tile the recording",
            window_us=window_us, stride_us=stride_us,
        )
    if signal_bits < 1:
        geometry_ok = False
        report.add(
            "QT701", "error", "",
            f"signal_bits must be >= 1, got {signal_bits}",
            hint="bin with the deployed system's signal precision",
            signal_bits=signal_bits,
        )

    if input_bits is not None and signal_bits >= 1 and signal_bits != input_bits:
        report.add(
            "QT704", "error", "",
            f"binning uses {signal_bits}-bit count windows but the deployed "
            f"input quantizer is {input_bits}-bit: a saturated count does "
            f"not map to the quantizer's full scale",
            hint="set TemporalConfig.signal_bits = system.config.input_bits",
            signal_bits=signal_bits, input_bits=input_bits,
        )

    if streams and geometry_ok:
        from repro.datasets.event_stream import max_window_count
        from repro.snc.spikes import window_length

        top = window_length(signal_bits)
        peak = max_window_count(streams, window_us, stride_us)
        if peak > top:
            report.add(
                "QT702", "warning", "",
                f"peak per-pixel count {peak} in a {window_us}µs window "
                f"exceeds the {signal_bits}-bit window 2^M−1 = {top}: "
                f"binning clips ({len(streams)} stream(s) measured)",
                hint="raise signal_bits, shorten the window, or accept the "
                     "saturation (it caps, not corrupts, hot pixels)",
                peak_count=peak, window_top=top,
            )

    if spec is not None and geometry_ok:
        from repro.snc.temporal import TemporalConfig, stream_timing

        timing = stream_timing(
            spec,
            TemporalConfig(window_us=window_us, stride_us=stride_us,
                           signal_bits=signal_bits),
            total_windows=max(nominal_windows, 2),
            profile=profile,
        )
        if timing.keeps_up_with > stride_us:
            report.add(
                "QT703", "error", "",
                f"stride delivers a window every {stride_us}µs but the "
                f"pipeline sustains one per {timing.keeps_up_with:.1f}µs "
                f"({timing.windows_per_second:.0f} windows/s): a live "
                f"session falls behind without bound",
                hint="lengthen the stride, reduce signal_bits, or use a "
                     "faster speed profile",
                stride_us=stride_us,
                sustainable_stride_us=timing.keeps_up_with,
                windows_per_second=timing.windows_per_second,
            )

    return report
