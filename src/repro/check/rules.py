"""Rule evaluation over the abstract interpreter's layer facts.

Each rule inspects the :class:`~repro.check.abstract.LayerFact` stream and
appends :class:`~repro.check.diagnostics.Diagnostic` records to the
report.  The rules mirror the paper's deployment constraints:

``QS2xx``
    Uniform M-bit signal quantization (Sec 3.1, Eq. 2–3): one (M, gain)
    pair network-wide, and no layer whose worst-case pre-activation
    interval proves the quantizer window is violated.
``QW3xx``
    N-bit weight grids (Eq. 6): weights on ``scale·D/2^N`` with
    ``|D| ≤ 2^(N−1)``, one N network-wide.
``QI4xx``
    The compiled engine's integer fast path
    (:mod:`repro.runtime.plan`): worst-case partial sums must fit the
    float32 mantissa (2^24) or the layer silently falls back to a
    float64 carrier; padded convolutions on an offset-carrying input
    representation cannot take the fast path at all.
``QC5xx``
    Crossbar feasibility (Eq. 1): tile counts against a budget,
    conductance-level representability
    (:func:`~repro.snc.memristor.levels_for_bits`, with the 64-level HP
    Labs device ceiling [16]), and spare-tile headroom for the
    remediation ladder (:mod:`repro.snc.remediation`).

:func:`check_module` is the one-call entry point: interpret, evaluate,
suppress, return the report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.check.abstract import LayerFact, analyze_module, structural_facts
from repro.check.diagnostics import CheckReport
from repro.nn.modules import Module
from repro.snc.crossbar import DEFAULT_CROSSBAR_SIZE, crossbars_required
from repro.snc.memristor import levels_for_bits

#: Float32 has a 24-bit significand: integer accumulations below this are
#: exact in a float32 carrier (mirrors ``plan._IntGemmMixin._init_int``).
FLOAT32_EXACT_LIMIT = 2 ** 24

#: Conductance levels HP Labs demonstrated on real devices [16]; more is
#: "heavy programming cost" territory (memristor.py).
DEMONSTRATED_DEVICE_LEVELS = 64


@dataclass
class CheckConfig:
    """Knobs for the rule engine.

    Attributes
    ----------
    crossbar_size:
        Physical tile side ``t`` for Eq. 1 counting (paper: 32).
    max_crossbars:
        Total tile budget; ``None`` disables QC501.
    device_levels:
        Conductance levels the target technology can program; ``None``
        checks only against the 64-level demonstrated ceiling.
    input_range:
        Interval the network inputs are known to lie in (default: images
        normalized to ``[0, 1]``).
    require_pow2_scales:
        Prove the multiplier-less shift requantize is available: every
        int-fast-path layer's folded requantize scale must sit exactly on
        the power-of-two grid with a shift amount in ``[0, 62]``
        (QS220/QS221).  Enabled by the engine for ``int_path="shift"``.
    suppress:
        Rule ids to drop from the final report.
    """

    crossbar_size: int = DEFAULT_CROSSBAR_SIZE
    max_crossbars: Optional[int] = None
    device_levels: Optional[int] = None
    input_range: Tuple[float, float] = (0.0, 1.0)
    require_pow2_scales: bool = False
    suppress: Tuple[str, ...] = field(default_factory=tuple)


def _act_quant_facts(facts: List[LayerFact]) -> List[LayerFact]:
    """Uniform (non-dynamic, enabled) signal quantizer facts."""
    return [
        f for f in facts
        if f.kind == "act-quant" and not f.data.get("dynamic") and f.data.get("enabled", True)
    ]


def _weight_facts(facts: List[LayerFact]) -> List[LayerFact]:
    return [f for f in facts if f.kind == "weight"]


def _valid_grid(fact: LayerFact) -> Optional[dict]:
    """The fact's grid metadata iff its weights genuinely sit on the grid."""
    grid = fact.data.get("grid")
    if grid and grid["on_grid"] and grid["in_range"]:
        return grid
    return None


# -- QS1xx ------------------------------------------------------------------

def _rule_unknown_modules(report: CheckReport, facts: List[LayerFact]) -> None:
    for f in facts:
        if f.data.get("unknown"):
            report.add(
                "QS102", "warning", f.path,
                f"module type {f.module_type} is unknown to the verifier; "
                "its output is assumed identical to its input",
                "add a transfer function in repro.check.abstract or replace the module",
            )


def _rule_training_mode(report: CheckReport, facts: List[LayerFact]) -> None:
    for f in facts:
        if f.data.get("training"):
            report.add(
                "QS103", "warning", f.path,
                f"{f.module_type} is in training mode; deployed inference "
                "must run in eval mode (the plan compiler refuses it)",
                "call .eval() on the network before deployment",
            )


# -- QS2xx ------------------------------------------------------------------

def _rule_signal_uniformity(report: CheckReport, facts: List[LayerFact]) -> None:
    quants = _act_quant_facts(facts)
    variants = {}
    for f in quants:
        variants.setdefault((f.data["bits"], round(f.data["gain"], 12)), []).append(f.path)
    if len(variants) > 1:
        desc = "; ".join(
            f"M={bits}, gain={gain:.6g} at {', '.join(paths)}"
            for (bits, gain), paths in sorted(variants.items())
        )
        report.add(
            "QS210", "error", "",
            f"signal quantizers are not uniform across the network: {desc}",
            "the SNC's IFC+counter pairs share one (M, gain) setting "
            "network-wide (Sec 3.1); redeploy with a single configuration",
            variants=[list(k) for k in variants],
        )


def _rule_signal_range(report: CheckReport, facts: List[LayerFact]) -> None:
    for f in _act_quant_facts(facts):
        pre_lo, pre_hi = f.data.get("pre_lo"), f.data.get("pre_hi")
        if pre_hi is None:
            continue  # structural mode: no intervals
        gain = f.data["gain"]
        top = 2 ** f.data["bits"] - 1
        # counts = clip(⌊gain·x + ½⌋, 0, top): clipping begins at
        # x ≥ (top + ½)/gain.
        threshold = (top + 0.5) / gain
        if pre_lo >= threshold:
            report.add(
                "QS201", "error", f.path,
                f"every pre-activation value provably saturates the "
                f"{f.data['bits']}-bit window: proven bounds "
                f"[{pre_lo:.4g}, {pre_hi:.4g}] lie entirely at or above the "
                f"clipping threshold {threshold:.4g}",
                "the layer output carries no information; lower the signal "
                "gain (signal_gain='auto') or retrain with the Neuron "
                "Convergence regularizer (Eq. 7)",
                pre_lo=pre_lo, pre_hi=pre_hi, threshold=threshold,
            )
        elif pre_hi >= threshold:
            report.add(
                "QS202", "info", f.path,
                f"worst-case pre-activations reach {pre_hi:.4g}, above the "
                f"clipping threshold {threshold:.4g}; adversarial inputs "
                "would saturate some spike counters",
                "expected for calibrated gains (clipping trades for "
                "resolution); verify accuracy on held-out data",
                pre_hi=pre_hi, threshold=threshold,
            )


# -- QW3xx ------------------------------------------------------------------

def _rule_weight_grid(report: CheckReport, facts: List[LayerFact]) -> None:
    for f in _weight_facts(facts):
        grid = f.data.get("grid")
        if grid is None:
            continue
        if not grid["on_grid"]:
            report.add(
                "QW301", "error", f.path,
                f"weights claim an N={grid['bits']} grid (scale "
                f"{grid['scale']:.6g}) but do not sit on it (Eq. 6: "
                "w = scale·D/2^N with integer D)",
                "re-quantize the layer (apply_weight_clustering) before "
                "deployment; the crossbar mapper will refuse these weights",
                bits=grid["bits"], scale=grid["scale"],
            )
        elif not grid["in_range"]:
            half = 2 ** (grid["bits"] - 1)
            report.add(
                "QW301", "error", f.path,
                f"weight codes reach ±{grid['max_abs_code']:.0f}, beyond the "
                f"±{half} range an N={grid['bits']} differential pair can "
                "program",
                "increase the clustering scale or the weight bit width",
                max_abs_code=grid["max_abs_code"], bits=grid["bits"],
            )


def _rule_weight_uniformity(report: CheckReport, facts: List[LayerFact]) -> None:
    by_bits = {}
    for f in _weight_facts(facts):
        grid = f.data.get("grid")
        if grid is not None:
            by_bits.setdefault(grid["bits"], []).append(f.path)
    if len(by_bits) > 1:
        desc = "; ".join(
            f"N={bits} at {', '.join(paths)}" for bits, paths in sorted(by_bits.items())
        )
        report.add(
            "QW302", "error", "",
            f"weight bit widths are not uniform across layers: {desc}",
            "every crossbar shares one device technology (one level count); "
            "redeploy with a single N",
            bits=sorted(by_bits),
        )


def _rule_pow2_requantize(report: CheckReport, facts: List[LayerFact],
                          config: CheckConfig) -> None:
    """QS220/QS221: shift-mode feasibility (``int_path="shift"``).

    The fused requantize multiplies the integer accumulator by
    ``q_scale = scale·gain_out / (2^N·gain_in)`` (see
    ``plan._IntGemmMixin``).  The multiplier-less engine replaces that
    with an arithmetic right shift, which is only exact when ``q_scale``
    is ``2^-shift`` for an integer ``shift`` in ``[0, 62]`` — this rule
    proves both, mirroring ``plan._IntGemmMixin._init_shift``.
    """
    if not config.require_pow2_scales:
        return
    for i, f in enumerate(facts):
        if f.kind != "weight" or not _int_path_applicable(facts, i):
            continue
        in_quant = f.data["in_quant"]
        if f.data["padding"] > 0 and in_quant.offset != 0.0:
            continue  # float path (QI402); no shift epilogue runs here
        grid = _valid_grid(f)
        gain_out = facts[i + 1].data["gain"]
        q_scale = grid["scale"] * gain_out / (2 ** grid["bits"] * in_quant.gain)
        if q_scale <= 0:
            report.add(
                "QS220", "error", f.path,
                f"requantize scale {q_scale:.6g} is not positive; the shift "
                "engine cannot represent it",
                "snap the layer scales (repro.core.pow2.snap_scales_pow2)",
                q_scale=q_scale,
            )
            continue
        exact = -math.log2(q_scale)
        shift = round(exact)
        if abs(exact - shift) > 1e-9:
            report.add(
                "QS220", "error", f.path,
                f"requantize scale {q_scale:.6g} is off the power-of-two "
                f"grid (nearest is 2^-{shift}); shift-only requantization "
                "would change every count",
                "snap the layer scales (repro.core.pow2.snap_scales_pow2) "
                "before deploying with int_path='shift'",
                q_scale=q_scale, nearest_shift=shift,
            )
        elif not 0 <= shift <= 62:
            report.add(
                "QS221", "error", f.path,
                f"requantize shift {shift} falls outside the provable "
                "arithmetic-shift range [0, 62] for a 64-bit accumulator",
                "rescale the layer (weight scale or signal gains) so the "
                "folded requantize shift is representable",
                shift=shift, q_scale=q_scale,
            )


# -- QI4xx ------------------------------------------------------------------

def _int_path_applicable(facts: List[LayerFact], i: int) -> bool:
    """Would ``compile_plan`` route weight-fact ``i`` through the int path?

    Mirrors the compiler's conditions: software layer on a valid grid, a
    counts-carrying input, and an immediately following enabled uniform
    quantizer (the fused activation).  The padded-conv-on-offset exclusion
    is checked separately (QI402).
    """
    f = facts[i]
    if f.data.get("spiking") or _valid_grid(f) is None or f.data.get("in_quant") is None:
        return False
    if i + 1 >= len(facts):
        return False
    nxt = facts[i + 1]
    return nxt.kind == "act-quant" and not nxt.data.get("dynamic") and nxt.data.get("enabled", True)


def _rule_int_fast_path(report: CheckReport, facts: List[LayerFact]) -> None:
    for i, f in enumerate(facts):
        if f.kind != "weight":
            continue
        if not _int_path_applicable(facts, i):
            continue
        in_quant = f.data["in_quant"]
        if f.data["padding"] > 0 and in_quant.offset != 0.0:
            f.data["carrier"] = None
            report.add(
                "QI402", "info", f.path,
                "padded convolution on an offset-carrying input "
                "representation cannot take the integer fast path "
                "(zero padding injects values the folded offset term "
                "cannot account for); it runs through the float path",
                "harmless for correctness; reorder the input quantizer or "
                "accept the float-path cost",
                padding=f.data["padding"], offset=in_quant.offset,
            )
            continue
        grid = _valid_grid(f)
        # Worst-case partial sum: every one of the K taps contributes the
        # maximum count times the maximum weight-code magnitude (mirrors
        # plan._IntGemmMixin._init_int's carrier choice).
        bound = f.data["fan_in"] * in_quant.top * (2 ** (grid["bits"] - 1))
        carrier = "float32" if bound < FLOAT32_EXACT_LIMIT else "float64"
        f.data["carrier"] = carrier
        if carrier == "float64":
            report.add(
                "QI401", "warning", f.path,
                f"worst-case integer partial sum {bound:,} exceeds the "
                f"float32 mantissa (2^24 = {FLOAT32_EXACT_LIMIT:,}); the "
                "fast path silently falls back to a float64 carrier "
                "(≈2× GEMM cost)",
                "reduce fan-in, M, or N — e.g. split the layer — or accept "
                "the float64 carrier",
                bound=bound, fan_in=f.data["fan_in"],
                input_top=in_quant.top, weight_bits=grid["bits"],
            )


# -- QC5xx ------------------------------------------------------------------

def _rule_crossbar_budget(report: CheckReport, facts: List[LayerFact],
                          config: CheckConfig) -> None:
    total = 0
    per_layer = []
    for f in _weight_facts(facts):
        if f.data.get("spiking"):
            tiles = f.data["crossbars"]
        else:
            tiles = crossbars_required(f.data["rows"], f.data["cols"], config.crossbar_size)
        f.data["crossbars"] = tiles
        per_layer.append((f.path, tiles))
        total += tiles
    if config.max_crossbars is not None and total > config.max_crossbars:
        worst = sorted(per_layer, key=lambda item: -item[1])[:3]
        desc = ", ".join(f"{path}: {tiles}" for path, tiles in worst)
        report.add(
            "QC501", "error", "",
            f"network needs {total} crossbars of size {config.crossbar_size} "
            f"(Eq. 1) but the budget is {config.max_crossbars}; largest "
            f"layers: {desc}",
            "raise the budget, shrink the network (width_multiplier), or "
            "increase the crossbar size",
            total=total, budget=config.max_crossbars, size=config.crossbar_size,
        )


def _rule_conductance_levels(report: CheckReport, facts: List[LayerFact],
                             config: CheckConfig) -> None:
    for f in _weight_facts(facts):
        grid = f.data.get("grid")
        if grid is None:
            continue
        required = levels_for_bits(grid["bits"])
        available = f.data.get("device_levels", config.device_levels)
        if available is not None and required > available:
            report.add(
                "QC502", "error", f.path,
                f"N={grid['bits']} weights need {required} conductance "
                f"levels per device; the target technology provides "
                f"{available}",
                "lower the weight bit width or use a device with more levels",
                required=required, available=available,
            )
        elif required > DEMONSTRATED_DEVICE_LEVELS:
            report.add(
                "QC502", "warning", f.path,
                f"N={grid['bits']} weights need {required} conductance "
                f"levels — beyond the {DEMONSTRATED_DEVICE_LEVELS} levels "
                "demonstrated on real memristors [16]",
                "expect heavy programming cost; the paper deploys at N=4 "
                "(9 levels)",
                required=required,
            )


def _rule_spare_headroom(report: CheckReport, facts: List[LayerFact]) -> None:
    for f in _weight_facts(facts):
        if not f.data.get("spiking"):
            continue
        if f.data["remapped_tiles"] > 0 and f.data["spares_remaining"] == 0:
            report.add(
                "QC503", "warning", f.path,
                f"remediation has consumed all spare tiles "
                f"({f.data['remapped_tiles']} remapped, 0 spares left); the "
                "next tile fault on this layer cannot be remapped",
                "provision more spares (map_network spare_fraction) or plan "
                "for software fallback on the next fault",
                remapped=f.data["remapped_tiles"],
            )


def evaluate_rules(report: CheckReport, config: Optional[CheckConfig] = None) -> CheckReport:
    """Run every rule over ``report.facts``, appending diagnostics."""
    config = config or CheckConfig()
    facts = report.facts
    _rule_unknown_modules(report, facts)
    _rule_training_mode(report, facts)
    _rule_signal_uniformity(report, facts)
    _rule_signal_range(report, facts)
    _rule_weight_grid(report, facts)
    _rule_weight_uniformity(report, facts)
    _rule_pow2_requantize(report, facts, config)
    _rule_int_fast_path(report, facts)
    _rule_crossbar_budget(report, facts, config)
    _rule_conductance_levels(report, facts, config)
    _rule_spare_headroom(report, facts)
    return report


def check_module(
    module: Module,
    input_shape: Optional[Tuple[int, ...]] = None,
    config: Optional[CheckConfig] = None,
    target: str = "module",
) -> CheckReport:
    """Statically verify a module graph for SNC deployment.

    With ``input_shape`` (per-sample, no batch axis) the full abstract
    interpretation runs — shapes, intervals, and every rule.  Without it,
    only the structural rules apply (quantizer/weight uniformity, grids,
    mantissa fit, crossbar feasibility).
    """
    config = config or CheckConfig()
    if input_shape is not None:
        report = analyze_module(module, input_shape, config.input_range, target)
    else:
        report = CheckReport(target, facts=structural_facts(module))
    evaluate_rules(report, config)
    if config.suppress:
        report = report.suppressed(config.suppress)
    return report
