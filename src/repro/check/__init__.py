"""Static deployment verifier: prove quantization/crossbar safety before
a single spike is simulated.

The subsystem abstractly interprets a module graph
(:mod:`repro.check.abstract`), evaluates the paper's deployment
constraints as rules (:mod:`repro.check.rules` — signal range and
uniformity per Eq. 2–3, weight grids per Eq. 6, integer-fast-path
mantissa fit, crossbar feasibility per Eq. 1), and emits structured
:class:`Diagnostic` records (:mod:`repro.check.diagnostics`).  A second
verifier (:mod:`repro.check.plancheck`, rules PL601–PL605) proves the
*compiled* :class:`~repro.runtime.plan.ExecutionPlan` IR safe — overflow,
aliasing, layout/dtype contracts, shift feasibility, replay purity —
before the engine replays it.  Consumers: the ``repro check`` CLI command
(``--plans`` for the plan verifier), the deployment gate in
:func:`repro.core.deployment.deploy_model`, and the pre-trace/post-trace
validation in :class:`repro.runtime.engine.InferenceEngine`.  See
``docs/static_analysis.md`` for the full rule catalogue.
"""

from repro.check.abstract import (
    AbstractSignal,
    LayerFact,
    SignalQuant,
    analyze_module,
    structural_facts,
)
from repro.check.diagnostics import RULES, SEVERITIES, CheckReport, Diagnostic
from repro.check.plancheck import (
    PlanCheckConfig,
    accumulator_bound,
    check_plan,
    check_plan_ir,
)
from repro.check.rules import CheckConfig, check_module, evaluate_rules
from repro.check.specs import check_spec
from repro.check.temporal import check_temporal

__all__ = [
    "AbstractSignal",
    "CheckConfig",
    "CheckReport",
    "Diagnostic",
    "LayerFact",
    "PlanCheckConfig",
    "RULES",
    "SEVERITIES",
    "SignalQuant",
    "accumulator_bound",
    "analyze_module",
    "check_module",
    "check_plan",
    "check_plan_ir",
    "check_spec",
    "check_temporal",
    "evaluate_rules",
    "structural_facts",
]
