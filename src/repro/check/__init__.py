"""Static deployment verifier: prove quantization/crossbar safety before
a single spike is simulated.

The subsystem abstractly interprets a module graph
(:mod:`repro.check.abstract`), evaluates the paper's deployment
constraints as rules (:mod:`repro.check.rules` — signal range and
uniformity per Eq. 2–3, weight grids per Eq. 6, integer-fast-path
mantissa fit, crossbar feasibility per Eq. 1), and emits structured
:class:`Diagnostic` records (:mod:`repro.check.diagnostics`).  Consumers:
the ``repro check`` CLI command, the deployment gate in
:func:`repro.core.deployment.deploy_model`, and the pre-trace validation
in :class:`repro.runtime.engine.InferenceEngine`.  See
``docs/static_analysis.md`` for the full rule catalogue.
"""

from repro.check.abstract import (
    AbstractSignal,
    LayerFact,
    SignalQuant,
    analyze_module,
    structural_facts,
)
from repro.check.diagnostics import RULES, SEVERITIES, CheckReport, Diagnostic
from repro.check.rules import CheckConfig, check_module, evaluate_rules
from repro.check.specs import check_spec

__all__ = [
    "AbstractSignal",
    "CheckConfig",
    "CheckReport",
    "Diagnostic",
    "LayerFact",
    "RULES",
    "SEVERITIES",
    "SignalQuant",
    "analyze_module",
    "check_module",
    "check_spec",
    "evaluate_rules",
    "structural_facts",
]
