"""Static verifier for compiled execution plans (the PL6xx rule catalogue).

The module-graph checker (:mod:`repro.check.rules`) proves the paper's
deployment invariants *before* tracing; this module proves the compiled
artifact itself — the :class:`~repro.runtime.plan.ExecutionPlan` the engine
actually replays — safe, without running any data through it.  It consumes
only the plan's declared IR (:meth:`ExecutionPlan.summarize`), never
private step state, and emits the same :class:`CheckReport` machinery the
rest of the checker uses, so plan findings merge into CLI output, engine
stats, and JSON exports unchanged.

Rules
-----
PL601
    Worst-case accumulator bounds.  Reproves — via the interval domain's
    affine transfer, independently of the plan's own carrier choice — that
    the integer GEMM's largest possible partial sum fits the declared BLAS
    carrier mantissa (2^24 for float32, 2^53 for float64) and, in shift
    mode, that accumulator + folded offset fits the declared integer
    accumulator dtype.
PL602
    Aliasing safety.  No cached copy-program ``(dst, src)`` pair may
    overlap byte ranges of the same base allocation, and no two steps may
    share one pooled allocation.
PL603
    Boundary contracts.  The declared layout chain must be consistent
    step-to-step (batch-last ``(C,H,W,B)`` handoffs land only on steps
    that accept them, the plan ends batch-major or flat), the counts
    window each step consumes must equal the window its producer emitted,
    and pooled accumulator/output buffers must carry exactly the dtypes
    the step declares (``describe()`` honesty).
PL604
    Shift-epilogue feasibility — the plan-level twin of QS220/QS221:
    every requantize scale sits exactly on the power-of-two grid, shifts
    are within ``[0, 62]``, and the folded integer offsets are finite.
PL605
    Replay purity.  Every pooled allocation must be claimed by a declared
    workspace tag of an existing step — a semantic complement to the
    RL002 AST lint: not only does no replay body *allocate*, the traced
    working set contains nothing a step did not declare.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.check.abstract import _interval_affine
from repro.check.diagnostics import CheckReport

if TYPE_CHECKING:  # pragma: no cover - import-time only for annotations
    from repro.runtime.plan import ExecutionPlan, PlanIR, StepIR

#: Largest magnitude each float BLAS carrier accumulates exactly
#: (its mantissa width): beyond this, integer sums silently round.
CARRIER_EXACT: Dict[str, float] = {
    "float32": float(2 ** 24),
    "float64": float(2 ** 53),
}

#: Exclusive magnitude limit of each shift-mode integer accumulator.
ACC_LIMIT: Dict[str, float] = {
    "int32": float(2 ** 31),
    "int64": float(2 ** 63),
}

#: Layouts a finished plan may end in (what callers are promised).
_TERMINAL_LAYOUTS = ("batch", "flat")


@dataclass(frozen=True)
class PlanCheckConfig:
    """Options for the plan verifier.

    ``suppress`` drops the given rule ids from the returned report (same
    semantics as :class:`~repro.check.rules.CheckConfig.suppress`).
    """

    suppress: Tuple[str, ...] = ()


def accumulator_bound(codes: np.ndarray, in_top: float) -> float:
    """Sound worst-case ``|accumulator|`` of ``counts @ codes.T``.

    Reuses the interval domain's affine transfer — positive/negative
    weight split — with every count in ``[0, in_top]``.  The hypothesis
    suite proves the bound sound against concrete random inputs; it is
    also exact (attained by setting each count to ``in_top`` exactly where
    its code is positive, resp. negative).
    """
    lo, hi = _interval_affine(
        np.asarray(codes, dtype=np.float64), None, 0.0, float(in_top)
    )
    return max(abs(lo), abs(hi))


def _where(step: "StepIR") -> str:
    return f"step{step.index}:{step.kind}"


def _rule_pl601(report: CheckReport, ir: "PlanIR") -> None:
    """Accumulator-bound proofs for every declared integer GEMM."""
    for step in ir.steps:
        if step.codes is None or step.consumes_top is None:
            continue
        bound = accumulator_bound(step.codes, step.consumes_top)
        limit = CARRIER_EXACT.get(step.carrier or "")
        if limit is None:
            report.add(
                "PL601", "error", _where(step),
                f"undeclared or unknown BLAS carrier {step.carrier!r}; "
                "cannot prove the accumulator exact",
                carrier=step.carrier,
            )
        elif bound >= limit:
            report.add(
                "PL601", "error", _where(step),
                f"worst-case |accumulator| {bound:.4g} (K={step.reduction_k}, "
                f"counts ≤ {step.consumes_top}, N={step.weight_bits}) reaches "
                f"the {step.carrier} mantissa limit {limit:.4g}; partial sums "
                "can round silently",
                hint="the carrier must widen to float64 (or the reduction shrink)",
                bound=bound, limit=limit, carrier=step.carrier,
            )
        if step.shift is None:
            continue
        worst = bound + (step.shift_offsets_absmax or 0.0)
        acc_limit = ACC_LIMIT.get(step.acc_dtype or "")
        if acc_limit is None:
            report.add(
                "PL601", "error", _where(step),
                f"shift epilogue declares no integer accumulator dtype "
                f"(got {step.acc_dtype!r})",
                acc_dtype=step.acc_dtype,
            )
        elif worst >= acc_limit:
            report.add(
                "PL601", "error", _where(step),
                f"pre-shift accumulator + offset {worst:.4g} overflows the "
                f"declared {step.acc_dtype} accumulator (limit {acc_limit:.4g})",
                hint="the shift accumulator must widen to int64",
                worst=worst, limit=acc_limit, acc_dtype=step.acc_dtype,
            )


def _rule_pl602(report: CheckReport, ir: "PlanIR") -> None:
    """Aliasing: copy-program views and pooled-buffer ownership."""
    for step in ir.steps:
        for pair_index, (dst, src) in enumerate(step.copy_views or ()):
            if dst.overlaps(src):
                report.add(
                    "PL602", "error", _where(step),
                    f"copy-program pair {pair_index} writes bytes "
                    f"[{dst.lo}, {dst.hi}) of the buffer it reads "
                    f"[{src.lo}, {src.hi}) from — replay order becomes "
                    "value-changing",
                    dst=(dst.lo, dst.hi), src=(src.lo, src.hi),
                    shape=list(dst.shape),
                )
    owners_by_base: Dict[int, set] = {}
    for buf in ir.buffers:
        owners_by_base.setdefault(buf.base, set()).add((buf.owner, buf.tag))
    for base, owners in owners_by_base.items():
        step_owners = {owner for owner, _ in owners}
        if len(step_owners) > 1:
            claims = ", ".join(
                f"step{owner}[{tag or 'base'}]" for owner, tag in sorted(
                    owners, key=lambda item: (str(item[0]), item[1]))
            )
            report.add(
                "PL602", "error", "<pool>",
                f"one pooled allocation is claimed by multiple steps "
                f"({claims}); a later step would clobber an earlier "
                "step's live staging data",
                owners=sorted(str(owner) for owner in step_owners),
            )


def _rule_pl603(report: CheckReport, ir: "PlanIR") -> None:
    """Layout chain, counts-window chain, and workspace-dtype honesty."""
    layout = "batch"
    for step in ir.steps:
        if step.layouts_in is not None and layout not in step.layouts_in:
            report.add(
                "PL603", "error", _where(step),
                f"step accepts layouts {list(step.layouts_in)} but its "
                f"predecessor hands off {layout!r}",
                hint="the compiler must insert a layout-restore step",
                got=layout, accepts=list(step.layouts_in),
            )
        if step.layout_out is not None:
            layout = step.layout_out
    if layout not in _TERMINAL_LAYOUTS:
        report.add(
            "PL603", "error", "<plan>",
            f"plan ends in internal layout {layout!r}; callers are promised "
            f"one of {list(_TERMINAL_LAYOUTS)}",
            final_layout=layout,
        )

    top: Optional[int] = None
    for step in ir.steps:
        if step.consumes_top is not None and top != step.consumes_top:
            report.add(
                "PL603", "error", _where(step),
                f"step consumes a counts window of top={step.consumes_top} "
                f"but the incoming representation is "
                f"{'float values' if top is None else f'top={top}'}",
                expected=step.consumes_top, got=top,
            )
        if not step.rep_passthrough:
            top = step.produces_top
    if top is not None:
        report.add(
            "PL603", "error", "<plan>",
            f"plan output is still a counts window (top={top}); the final "
            "dequantize step is missing",
            final_top=top,
        )

    steps_by_index = {step.index: step for step in ir.steps}
    for buf in ir.buffers:
        step = steps_by_index.get(buf.owner) if buf.owner is not None else None
        if step is None:
            continue  # ownership itself is PL605's finding
        declared = step.workspaces.get(buf.tag)
        if declared is not None and declared != buf.dtype:
            report.add(
                "PL603", "error", _where(step),
                f"workspace {buf.tag or 'base'!r} declares dtype {declared} "
                f"but the traced pool holds {buf.dtype} — describe() and "
                "replay disagree",
                tag=buf.tag, declared=declared, actual=buf.dtype,
            )


def _rule_pl604(report: CheckReport, ir: "PlanIR") -> None:
    """Shift-epilogue feasibility (plan-level QS220/QS221)."""
    for step in ir.steps:
        if ir.int_path == "shift" and step.q_scale is not None and step.shift is None:
            report.add(
                "PL604", "error", _where(step),
                "plan was compiled for int_path='shift' but this requantize "
                "step carries no shift epilogue",
                q_scale=step.q_scale,
            )
        if step.shift is None:
            continue
        if not 0 <= step.shift <= 62:
            report.add(
                "PL604", "error", _where(step),
                f"shift amount {step.shift} falls outside the provable "
                "[0, 62] range",
                shift=step.shift,
            )
        scale = step.q_scale
        if scale is None or scale <= 0 or not math.isfinite(scale):
            report.add(
                "PL604", "error", _where(step),
                f"shift epilogue with non-positive requantize scale {scale!r}",
                q_scale=scale,
            )
        elif abs(-math.log2(scale) - step.shift) > 1e-9:
            report.add(
                "PL604", "error", _where(step),
                f"requantize scale {scale!r} is not 2^-{step.shift}; the "
                "arithmetic right shift would compute a different quantizer",
                hint="snap the layer scales (repro.core.pow2.snap_scales_pow2)"
                     " before tracing in shift mode",
                q_scale=scale, shift=step.shift,
            )
        absmax = step.shift_offsets_absmax
        if absmax is None or not math.isfinite(absmax):
            report.add(
                "PL604", "error", _where(step),
                f"shift epilogue offsets are not finite (max |offset| = {absmax!r})",
                offsets_absmax=absmax,
            )


def _rule_pl605(report: CheckReport, ir: "PlanIR") -> None:
    """Replay purity: the traced pool holds only declared workspaces."""
    steps_by_index = {step.index: step for step in ir.steps}
    for buf in ir.buffers:
        step = steps_by_index.get(buf.owner) if buf.owner is not None else None
        if step is None:
            report.add(
                "PL605", "error", "<pool>",
                f"pooled buffer {buf.tag!r} ({buf.shape}, {buf.dtype}) is "
                f"keyed to step index {buf.owner!r}, which no plan step "
                "declares",
                owner=str(buf.owner), tag=buf.tag, dtype=buf.dtype,
            )
        elif buf.tag not in step.workspaces:
            report.add(
                "PL605", "error", _where(step),
                f"pooled buffer carries undeclared workspace tag "
                f"{buf.tag or 'base'!r} ({buf.shape}, {buf.dtype}); the step "
                f"declares only {sorted(repr(t or 'base') for t in step.workspaces)}",
                tag=buf.tag, dtype=buf.dtype,
            )


_RULE_PASSES = (_rule_pl601, _rule_pl602, _rule_pl603, _rule_pl604, _rule_pl605)


def check_plan_ir(
    ir: "PlanIR",
    config: Optional[PlanCheckConfig] = None,
    target: str = "plan",
) -> CheckReport:
    """Run every PL6xx rule over an already-summarized plan IR."""
    report = CheckReport(target)
    for rule_pass in _RULE_PASSES:
        rule_pass(report, ir)
    if config is not None and config.suppress:
        report = report.suppressed(config.suppress)
    return report


def check_plan(
    plan: "ExecutionPlan",
    config: Optional[PlanCheckConfig] = None,
    target: Optional[str] = None,
) -> CheckReport:
    """Summarize ``plan`` into its declared IR and statically verify it.

    Returns a :class:`CheckReport`; ``report.ok`` means every PL6xx rule
    holds and the plan is safe to replay.
    """
    ir = plan.summarize()
    if target is None:
        target = (
            f"plan[{len(ir.steps)} steps, int={ir.int_steps}, "
            f"path={ir.int_path}, kernels={ir.int_kernels}]"
        )
    return check_plan_ir(ir, config, target)


__all__: List[str] = [
    "ACC_LIMIT",
    "CARRIER_EXACT",
    "PlanCheckConfig",
    "accumulator_bound",
    "check_plan",
    "check_plan_ir",
]
