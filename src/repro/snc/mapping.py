"""Mapping quantized network layers onto memristor crossbars (Fig. 2).

A convolutional layer maps column-by-column: filter ``K_j^i`` occupies
bitline ``BL_j``; its ``s·s·d`` taps occupy wordlines, so an im2col'd input
patch drives the wordlines and the convolution result for every filter
appears across the bitlines in one analog step.  A fully connected layer
maps directly.  Biases occupy extra wordlines driven by a constant input
(replicated across as many rows as the bias magnitude needs, since a row's
device saturates at code ``2^(N−1)``).

:class:`SpikingConv2d` / :class:`SpikingLinear` are drop-in module
replacements whose forward runs through the *analog crossbar path* (tiled
differential-pair MVM in conductance units) instead of a float matmul.
With an ideal device model they reproduce the quantized float computation
to machine precision; with programming variation they model a defective
chip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.surgery import replace_modules, weight_bearing_modules
from repro.core.weight_clustering import ModelClusteringReport
from repro.nn.functional import _im2col
from repro.nn.modules import Conv2d, Linear, Module
from repro.nn.tensor import Tensor
from repro.snc.crossbar import DEFAULT_CROSSBAR_SIZE, CrossbarArray
from repro.snc.memristor import MemristorModel, model_for_bits


def weight_codes_from_quantized(
    weights: np.ndarray, bits: int, scale: float
) -> np.ndarray:
    """Invert ``w = scale · D / 2^N`` back to integer codes ``D``.

    The weights must already lie exactly on the grid (they do after
    clustering); a tolerance check guards against passing float weights.
    """
    codes = weights * (2 ** bits) / scale
    rounded = np.rint(codes)
    if not np.allclose(codes, rounded, atol=1e-6):
        raise ValueError("weights are not on the fixed-point grid; quantize first")
    return rounded.astype(np.int64)


def _bias_rows(bias_codes: np.ndarray, half: int) -> np.ndarray:
    """Split bias codes into rows each holding codes within ±half.

    Returns ``(n_rows, cols)`` integer codes whose column sums equal the
    bias codes; every row is driven by a constant unit input.
    """
    n_rows = max(1, int(np.ceil(np.abs(bias_codes).max() / half)) if bias_codes.size else 1)
    rows = np.zeros((n_rows, bias_codes.size), dtype=np.int64)
    remaining = bias_codes.copy()
    for i in range(n_rows):
        chunk = np.clip(remaining, -half, half)
        rows[i] = chunk
        remaining = remaining - chunk
    if np.any(remaining != 0):
        raise AssertionError("bias splitting failed to exhaust codes")
    return rows


@dataclass
class LayerMapping:
    """Bookkeeping for one mapped layer (used by reports and the cost model)."""

    name: str
    kind: str
    rows: int
    cols: int
    bias_rows: int
    crossbars: int
    scale: float
    bits: int
    spare_tiles: int = 0


class SpikingConv2d(Module):
    """A Conv2d executed on a tiled memristor crossbar (Fig. 2 layout)."""

    def __init__(
        self,
        conv: Conv2d,
        bits: int,
        scale: float,
        size: int = DEFAULT_CROSSBAR_SIZE,
        device: Optional[MemristorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.stride = conv.stride
        self.padding = conv.padding
        self.kernel_size = conv.kernel_size
        self.in_channels = conv.in_channels
        self.out_channels = conv.out_channels
        self.bits = bits
        self.scale = scale

        # Fig. 2: filter j → column j; rows are the unrolled s·s·d taps.
        w_codes = weight_codes_from_quantized(conv.weight.data, bits, scale)
        matrix = w_codes.reshape(conv.out_channels, -1).T  # (s·s·d, J)
        half = 2 ** (bits - 1)
        self._n_bias_rows = 0
        if conv.bias is not None:
            step = scale / float(2 ** bits)
            bias_codes = np.rint(conv.bias.data / step).astype(np.int64)
            extra = _bias_rows(bias_codes, half)
            matrix = np.vstack([matrix, extra])
            self._n_bias_rows = extra.shape[0]
        self.array = CrossbarArray(
            matrix, bits=bits, scale=scale, size=size,
            device=device or model_for_bits(bits), rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        cols, (out_h, out_w) = _im2col(
            x.data, (self.kernel_size, self.kernel_size),
            (self.stride, self.stride), (self.padding, self.padding),
        )
        if self._n_bias_rows:
            ones = np.ones((cols.shape[0], self._n_bias_rows))
            cols = np.hstack([cols, ones])
        code_units = self.array.multiply_analog(cols)
        values = code_units * (self.scale / float(2 ** self.bits))
        batch = x.shape[0]
        out = values.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        return Tensor(out)

    def __repr__(self) -> str:
        return (
            f"SpikingConv2d({self.in_channels}→{self.out_channels}, "
            f"k={self.kernel_size}, crossbars={self.array.num_crossbars})"
        )


class SpikingLinear(Module):
    """A Linear layer executed on a tiled memristor crossbar."""

    def __init__(
        self,
        linear: Linear,
        bits: int,
        scale: float,
        size: int = DEFAULT_CROSSBAR_SIZE,
        device: Optional[MemristorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = linear.in_features
        self.out_features = linear.out_features
        self.bits = bits
        self.scale = scale

        w_codes = weight_codes_from_quantized(linear.weight.data, bits, scale)
        matrix = w_codes.T  # (in_features, out_features): inputs on wordlines
        half = 2 ** (bits - 1)
        self._n_bias_rows = 0
        if linear.bias is not None:
            step = scale / float(2 ** bits)
            bias_codes = np.rint(linear.bias.data / step).astype(np.int64)
            extra = _bias_rows(bias_codes, half)
            matrix = np.vstack([matrix, extra])
            self._n_bias_rows = extra.shape[0]
        self.array = CrossbarArray(
            matrix, bits=bits, scale=scale, size=size,
            device=device or model_for_bits(bits), rng=rng,
        )

    def forward(self, x: Tensor) -> Tensor:
        data = x.data
        if self._n_bias_rows:
            ones = np.ones(data.shape[:-1] + (self._n_bias_rows,))
            data = np.concatenate([data, ones], axis=-1)
        code_units = self.array.multiply_analog(data)
        return Tensor(code_units * (self.scale / float(2 ** self.bits)))

    def __repr__(self) -> str:
        return (
            f"SpikingLinear({self.in_features}→{self.out_features}, "
            f"crossbars={self.array.num_crossbars})"
        )


@dataclass
class MappingReport:
    """Every mapped layer plus network-wide crossbar totals."""

    crossbar_size: int
    layers: List[LayerMapping] = field(default_factory=list)

    @property
    def total_crossbars(self) -> int:
        return sum(layer.crossbars for layer in self.layers)

    @property
    def total_spare_tiles(self) -> int:
        return sum(layer.spare_tiles for layer in self.layers)

    def summary(self) -> str:
        lines = [f"Crossbar mapping (t={self.crossbar_size}):"]
        for layer in self.layers:
            spares = f", {layer.spare_tiles} spares" if layer.spare_tiles else ""
            lines.append(
                f"  {layer.name} [{layer.kind}]: {layer.rows}×{layer.cols} "
                f"(+{layer.bias_rows} bias rows) → {layer.crossbars} crossbars{spares}"
            )
        total_spares = f" (+{self.total_spare_tiles} spares)" if self.total_spare_tiles else ""
        lines.append(f"  total: {self.total_crossbars} crossbars{total_spares}")
        return "\n".join(lines)


def map_network(
    deployed: Module,
    clustering: ModelClusteringReport,
    size: int = DEFAULT_CROSSBAR_SIZE,
    device: Optional[MemristorModel] = None,
    rng: Optional[np.random.Generator] = None,
    spare_fraction: float = 0.0,
) -> MappingReport:
    """Replace every Conv2d/Linear in ``deployed`` with its crossbar twin.

    ``clustering`` must be the report produced when the model's weights
    were quantized (it carries the per-layer scales).  Mutates ``deployed``
    in place and returns the mapping report.

    ``spare_fraction`` provisions redundant crossbars for the remediation
    ladder (:mod:`repro.snc.remediation`): each layer's array reserves
    ``ceil(crossbars · spare_fraction)`` pristine spare tiles that damaged
    tiles can be remapped onto.
    """
    if not 0.0 <= spare_fraction <= 1.0:
        raise ValueError(f"spare_fraction must be in [0, 1], got {spare_fraction}")
    scales: Dict[int, float] = {}
    bits = clustering.bits
    for name, module in weight_bearing_modules(deployed):
        key = f"{name}.weight"
        if key not in clustering.results:
            raise KeyError(f"no clustering result for layer {key}")
        scales[id(module)] = clustering.results[key].scale

    report = MappingReport(crossbar_size=size)

    def build(old: Module) -> Module:
        scale = scales[id(old)]
        if isinstance(old, Conv2d):
            new: Module = SpikingConv2d(old, bits, scale, size=size, device=device, rng=rng)
        else:
            new = SpikingLinear(old, bits, scale, size=size, device=device, rng=rng)
        return new

    replace_modules(
        deployed,
        predicate=lambda m: isinstance(m, (Conv2d, Linear)),
        factory=build,
    )
    for name, module in deployed.named_modules():
        if isinstance(module, (SpikingConv2d, SpikingLinear)):
            spares = 0
            if spare_fraction > 0:
                spares = int(np.ceil(module.array.num_crossbars * spare_fraction))
                module.array.provision_spares(spares)
            report.layers.append(
                LayerMapping(
                    name=name,
                    kind="conv" if isinstance(module, SpikingConv2d) else "fc",
                    rows=module.array.rows - module._n_bias_rows,
                    cols=module.array.cols,
                    bias_rows=module._n_bias_rows,
                    crossbars=module.array.num_crossbars,
                    scale=module.scale, bits=module.bits,
                    spare_tiles=spares,
                )
            )
    return report
