"""Rate coding: integers ↔ spike trains.

On the SNC, an M-bit inter-layer signal is carried as the *number of
spikes* inside a fixed time window of ``2^M − 1`` slots (Sec. 1: "an 8-bit
precision corresponds to 256 spikes and requires large time window").
Encoding an integer ``k`` as exactly ``k`` spikes makes the code lossless
for integers — which is precisely why the paper trains networks to have
*integer* signals: nothing is lost crossing a layer boundary.

Two spike placements are provided:

- ``uniform`` — spikes spread evenly over the window (what a counter-based
  spike generator emits; deterministic);
- ``bernoulli`` — i.i.d. thinning at rate ``k/window`` (a Poisson-like
  neuron; stochastic, the count is only correct in expectation — useful to
  demonstrate *why* deterministic rate coding is preferred).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def window_length(bits: int) -> int:
    """Slots needed so every M-bit value (0 … 2^M − 1) has a distinct count."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2 ** bits - 1


def encode_uniform(counts: np.ndarray, bits: int) -> np.ndarray:
    """Encode integer ``counts`` into spike trains, spikes evenly spaced.

    Returns a boolean array of shape ``(window, *counts.shape)`` where
    ``out[t, …]`` marks a spike at slot ``t``.  Values are clipped to the
    representable range first (window saturation).
    """
    window = window_length(bits)
    counts = np.clip(np.asarray(counts), 0, window).astype(np.int64)
    slots = np.arange(window).reshape((window,) + (1,) * counts.ndim)
    # Emit a spike in slot t iff the integer ramp k·(t+1)/window advances:
    # exactly k slots fire, evenly spread.
    ramp_now = (counts * (slots + 1)) // window
    ramp_before = (counts * slots) // window
    return (ramp_now - ramp_before) > 0


def encode_bernoulli(
    counts: np.ndarray, bits: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Stochastic rate coding: each slot fires with probability ``k/window``."""
    window = window_length(bits)
    counts = np.clip(np.asarray(counts), 0, window)
    rng = rng or np.random.default_rng()
    probability = counts / window
    return rng.random((window,) + counts.shape) < probability


def decode_counts(spikes: np.ndarray) -> np.ndarray:
    """Count spikes over the window axis (axis 0) — the counter circuit."""
    return np.asarray(spikes).sum(axis=0).astype(np.int64)


def encoding_is_lossless(counts: np.ndarray, bits: int) -> bool:
    """True iff uniform encode → decode returns ``counts`` exactly.

    Holds for every integer array within ``[0, 2^M − 1]``.
    """
    counts = np.asarray(counts)
    return bool(np.array_equal(decode_counts(encode_uniform(counts, bits)),
                               np.clip(counts, 0, window_length(bits))))
