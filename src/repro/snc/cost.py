"""Speed / energy / area model of the memristor SNC (Table 5, Fig. 1a).

The paper obtains Table 5 "from circuits simulation on IBM 130nm
technology ... based on [12]".  Without the authors' SPICE decks we build
the same *structural* model — per-layer crossbar counts from Eq. 1, spike
windows of ``2^M − 1`` slots, per-column IFCs and M-bit counters — and
calibrate its small set of constants against the paper's own numbers:

**Speed.**  A layer is busy for one spike window plus a fixed peripheral
overhead, so system throughput over ``L`` pipeline stages is

    speed(M) = F_net / (2^M − 1 + overhead)        [inferences/µs → MHz]

``(F_net, overhead)`` per network are solved exactly from the paper's
8-bit and 4-bit rows; the 3-bit row is then a *prediction* (it lands
within 1% for all three networks — see EXPERIMENTS.md).

**Energy.**  ``E = e_event · output_spike_events + p_cell · cells · T``:
spike events dominate dynamic energy, array bias/leakage accrues over the
window.  The two constants are a non-negative least squares fit over all
nine Table 5 cells (within ±30% everywhere; the fit chose a per-input-event
coefficient of zero, so it is omitted).

**Area.**  The paper's areas obey a strikingly clean rule:
``area = n_crossbars × a_unit × (0.4 + 0.6·M/8)`` with a single
``a_unit = 0.0958 mm²`` — i.e. at 8 bits each deployed 32×32 crossbar
carries periphery (IFCs + counters + drivers) worth 60% of its unit area,
and that periphery scales linearly with the signal bit width.  This
reproduces the paper's uniform 30% (4-bit) and 37.5% (3-bit) area savings
exactly, for any network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.models.specs import NetworkSpec
from repro.snc.crossbar import DEFAULT_CROSSBAR_SIZE, crossbars_required

# ---------------------------------------------------------------------------
# The paper's Table 5, kept as ground truth for benches and calibration
# tests.  bits → (speed MHz, energy µJ, area mm²).
# ---------------------------------------------------------------------------
PAPER_TABLE5: Dict[str, Dict[int, tuple]] = {
    "lenet": {8: (0.64, 4.7, 1.48), 4: (8.93, 0.57, 1.04), 3: (15.63, 0.27, 0.93)},
    "alexnet": {8: (0.27, 337.0, 34.3), 4: (2.66, 36.9, 24.0), 3: (3.79, 26.3, 21.4)},
    "resnet": {8: (0.11, 19200.0, 937.3), 4: (1.38, 1500.0, 656.2), 3: (2.20, 935.0, 585.9)},
}


@dataclass(frozen=True)
class SpeedProfile:
    """Per-network throughput parameters.

    ``f_mhz`` is the effective clock budget (slot rate divided by pipeline
    depth); ``overhead_cycles`` the fixed per-window peripheral latency.
    """

    f_mhz: float
    overhead_cycles: float

    def speed_mhz(self, signal_bits: int) -> float:
        window = 2 ** signal_bits - 1
        return self.f_mhz / (window + 1 + self.overhead_cycles)


# Solved exactly from the paper's 8-bit and 4-bit speed rows (see module
# docstring); the 3-bit row is predicted, not fitted.
PAPER_SPEED_PROFILES: Dict[str, SpeedProfile] = {
    "lenet": SpeedProfile(f_mhz=165.46, overhead_cycles=2.528),
    "alexnet": SpeedProfile(f_mhz=72.12, overhead_cycles=11.116),
    "resnet": SpeedProfile(f_mhz=28.69, overhead_cycles=4.787),
}

# Generic fallback for arbitrary networks: slot clock ≈ 580 MHz spread over
# the pipeline depth (the paper's three networks give 662/577/516).
GENERIC_SLOT_CLOCK_MHZ = 580.0
GENERIC_OVERHEAD_CYCLES = 6.0


def generic_speed_profile(num_layers: int) -> SpeedProfile:
    """First-principles profile for a network without paper calibration."""
    if num_layers < 1:
        raise ValueError("num_layers must be >= 1")
    return SpeedProfile(
        f_mhz=GENERIC_SLOT_CLOCK_MHZ / num_layers,
        overhead_cycles=GENERIC_OVERHEAD_CYCLES,
    )


@dataclass(frozen=True)
class EnergyParameters:
    """Fitted energy constants (NNLS over the nine Table 5 cells).

    ``e_output_event_uj`` — energy per emitted output spike (IFC fire +
    counter toggle + inter-layer routing): 1.24 pJ.
    ``p_cell_uw`` — bias/leak power per memristor cell while its window is
    open: 0.112 µW (behavioural; includes sense-path overhead).
    """

    e_output_event_uj: float = 1.2397e-6
    p_cell_uw: float = 1.1207e-4  # µJ per cell·µs (≡ W per cell × 1e-4)


@dataclass(frozen=True)
class AreaParameters:
    """Area rule constants (see module docstring).

    ``a_unit_mm2`` — area of one deployed 32×32 crossbar *including* its
    8-bit periphery; ``array_fraction`` — the share that is the array +
    drivers (bit-width independent); the remaining ``1 − array_fraction``
    is IFCs + counters and scales ∝ M/8.
    """

    a_unit_mm2: float = 0.0958
    array_fraction: float = 0.4


@dataclass(frozen=True)
class NetworkAggregates:
    """Bit-width-independent hardware totals of one network."""

    name: str
    num_layers: int
    num_crossbars: int
    input_events_per_window: float   # Σ rows_i · spatial_i  (activity rows)
    output_events_per_window: float  # Σ cols_i · spatial_i
    total_rows: int
    total_cols: int

    @property
    def num_cells(self) -> int:
        """Differential-pair device count across all crossbars."""
        return self.num_crossbars * DEFAULT_CROSSBAR_SIZE ** 2 * 2


def aggregate_network(
    spec: NetworkSpec, crossbar_size: int = DEFAULT_CROSSBAR_SIZE
) -> NetworkAggregates:
    """Compute Eq. 1 crossbar counts and activity totals for a spec."""
    num_crossbars = sum(
        crossbars_required(layer.rows, layer.columns, crossbar_size)
        for layer in spec.layers
    )
    return NetworkAggregates(
        name=spec.name,
        num_layers=spec.num_layers,
        num_crossbars=num_crossbars,
        input_events_per_window=float(
            sum(layer.rows * layer.spatial_out for layer in spec.layers)
        ),
        output_events_per_window=float(
            sum(layer.columns * layer.spatial_out for layer in spec.layers)
        ),
        total_rows=sum(layer.rows for layer in spec.layers),
        total_cols=sum(layer.columns for layer in spec.layers),
    )


@dataclass(frozen=True)
class SystemCost:
    """One Table 5 cell: the three hardware figures of merit."""

    speed_mhz: float
    energy_uj: float
    area_mm2: float

    def speedup_over(self, baseline: "SystemCost") -> float:
        return self.speed_mhz / baseline.speed_mhz

    def energy_saving_over(self, baseline: "SystemCost") -> float:
        """Fractional saving, e.g. 0.891 = 89.1%."""
        return 1.0 - self.energy_uj / baseline.energy_uj

    def area_saving_over(self, baseline: "SystemCost") -> float:
        return 1.0 - self.area_mm2 / baseline.area_mm2


def evaluate_system_cost(
    spec: NetworkSpec,
    signal_bits: int,
    speed_profile: Optional[SpeedProfile] = None,
    energy: EnergyParameters = EnergyParameters(),
    area: AreaParameters = AreaParameters(),
    crossbar_size: int = DEFAULT_CROSSBAR_SIZE,
    mean_activity: float = 0.5,
) -> SystemCost:
    """Model one network at one signal bit width M.

    ``mean_activity`` is the average signal level as a fraction of
    full scale (0.5 = the symmetric default used in the fit); the spiking
    accuracy benches can pass measured values for activity-aware energy.
    """
    if signal_bits < 1:
        raise ValueError(f"signal_bits must be >= 1, got {signal_bits}")
    aggregates = aggregate_network(spec, crossbar_size)
    profile = speed_profile or PAPER_SPEED_PROFILES.get(
        spec.name, generic_speed_profile(spec.num_layers)
    )

    speed = profile.speed_mhz(signal_bits)

    window = 2 ** signal_bits - 1
    inference_time_us = (window + 1 + profile.overhead_cycles) / profile.f_mhz
    output_events = aggregates.output_events_per_window * window * mean_activity
    dynamic = energy.e_output_event_uj * output_events
    static = energy.p_cell_uw * aggregates.num_cells * inference_time_us
    total_energy = dynamic + static

    periphery_scale = area.array_fraction + (1.0 - area.array_fraction) * signal_bits / 8.0
    total_area = aggregates.num_crossbars * area.a_unit_mm2 * periphery_scale

    return SystemCost(speed_mhz=speed, energy_uj=total_energy, area_mm2=total_area)


def layer_breakdown(
    spec: NetworkSpec,
    signal_bits: int,
    energy: EnergyParameters = EnergyParameters(),
    area: AreaParameters = AreaParameters(),
    crossbar_size: int = DEFAULT_CROSSBAR_SIZE,
    mean_activity: float = 0.5,
) -> list:
    """Per-layer decomposition of the Table 5 totals.

    Attributes the network's crossbars, spike events, energy and area to
    individual layers — showing *where* the cost lives (e.g. a single FC
    layer's unrolled rows dominating the crossbar count).  The column sums
    reproduce :func:`evaluate_system_cost`'s energy/area (speed is a
    pipeline property and has no per-layer decomposition).
    """
    if signal_bits < 1:
        raise ValueError(f"signal_bits must be >= 1, got {signal_bits}")
    profile = PAPER_SPEED_PROFILES.get(
        spec.name, generic_speed_profile(spec.num_layers)
    )
    window = 2 ** signal_bits - 1
    inference_time_us = (window + 1 + profile.overhead_cycles) / profile.f_mhz
    periphery_scale = area.array_fraction + (1.0 - area.array_fraction) * signal_bits / 8.0

    rows = []
    for index, layer in enumerate(spec.layers):
        crossbars = crossbars_required(layer.rows, layer.columns, crossbar_size)
        cells = crossbars * crossbar_size ** 2 * 2
        output_events = layer.columns * layer.spatial_out * window * mean_activity
        dynamic = energy.e_output_event_uj * output_events
        static = energy.p_cell_uw * cells * inference_time_us
        rows.append(
            {
                "index": index,
                "kind": layer.kind,
                "rows": layer.rows,
                "cols": layer.columns,
                "crossbars": crossbars,
                "output_events": output_events,
                "energy_uj": dynamic + static,
                "area_mm2": crossbars * area.a_unit_mm2 * periphery_scale,
            }
        )
    return rows


@dataclass(frozen=True)
class RequantEnergyParameters:
    """Digital requantize-datapath energy constants (Horowitz-style, 45nm).

    Each output count leaving an integer fast-path layer passes exactly one
    requantize.  In multiply mode that is a 32-bit multiply plus an add; in
    ``engine_shift`` mode (scales snapped to the power-of-two grid, see
    :mod:`repro.core.pow2`) the multiplier disappears and the same
    requantize is an arithmetic right shift plus an add.  The per-op
    energies follow the widely used Horowitz ISSCC'14 numbers: a 32-bit
    integer multiply ≈ 3.1 pJ, a 32-bit add ≈ 0.1 pJ, and a barrel shift
    ≈ 0.13 pJ (comparable to an add — it is a mux tree, not an array
    multiplier).
    """

    e_mult32_pj: float = 3.1
    e_add32_pj: float = 0.1
    e_shift32_pj: float = 0.13


@dataclass(frozen=True)
class RequantEnergyDelta:
    """Per-inference requantize energy, multiply mode vs shift mode."""

    requant_ops: float          # output elements requantized per inference
    multiply_uj: float          # multiply-mode requantize energy
    shift_uj: float             # shift-mode requantize energy
    saving_uj: float            # multiply_uj − shift_uj (≥ 0)

    @property
    def saving_fraction(self) -> float:
        return 1.0 - self.shift_uj / self.multiply_uj if self.multiply_uj else 0.0


def requant_energy_delta(
    spec: NetworkSpec,
    params: RequantEnergyParameters = RequantEnergyParameters(),
    crossbar_size: int = DEFAULT_CROSSBAR_SIZE,
) -> RequantEnergyDelta:
    """Energy credit of the multiplier-less ``engine_shift`` requantize.

    Counts one requantize per output element per inference
    (``Σ cols_i · spatial_i`` over the network's layers — the same
    aggregate that drives the spike-event energy model) and prices it on
    both datapaths.  This models the *digital* deployment of the integer
    fast path; it is reported alongside, not folded into, the analog
    crossbar energy of :func:`evaluate_system_cost`, whose MACs never had
    a digital multiplier to begin with.
    """
    aggregates = aggregate_network(spec, crossbar_size)
    ops = aggregates.output_events_per_window
    multiply_uj = (params.e_mult32_pj + params.e_add32_pj) * ops * 1e-6
    shift_uj = (params.e_shift32_pj + params.e_add32_pj) * ops * 1e-6
    return RequantEnergyDelta(
        requant_ops=ops,
        multiply_uj=multiply_uj,
        shift_uj=shift_uj,
        saving_uj=multiply_uj - shift_uj,
    )


def table5_row(spec: NetworkSpec, signal_bits: int) -> Dict[str, float]:
    """One generated Table 5 row plus the ratios against the 8-bit baseline."""
    ours = evaluate_system_cost(spec, signal_bits)
    baseline = evaluate_system_cost(spec, 8)
    return {
        "model": spec.name,
        "bits": signal_bits,
        "speed_mhz": ours.speed_mhz,
        "speedup": ours.speedup_over(baseline),
        "energy_uj": ours.energy_uj,
        "energy_saving": ours.energy_saving_over(baseline),
        "area_mm2": ours.area_mm2,
        "area_saving": ours.area_saving_over(baseline),
    }
