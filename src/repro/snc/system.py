"""End-to-end spiking neuromorphic system simulation.

:func:`build_spiking_system` takes a *trained float* network and produces
the deployed hardware twin, composing every piece of the stack:

1. batchnorm folding + Weight Clustering (N-bit conductance codes),
2. activation quantization (M-bit fixed-integer signals = IFC + counter),
3. input quantization (images enter as spike counts through WL drivers),
4. crossbar mapping (Fig. 2 unrolling, 32×32 tiles, differential pairs).

The resulting :class:`SpikingSystem` runs inference through the analog
crossbar path.  With an ideal device model its outputs are *bit-exact*
against the quantized software model (`verify_equivalence`), which is the
property that lets the paper evaluate accuracy in software and deploy
without surprises.  With programming variation it becomes a defect study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.modules import QuantizedActivation
from repro.core.surgery import clone_module
from repro.nn.data import Dataset
from repro.nn.modules import Module
from repro.nn.tensor import Tensor, no_grad
from repro.obs import Telemetry
from repro.snc.mapping import MappingReport, map_network
from repro.snc.memristor import MemristorModel
from repro.snc.spikes import window_length


@dataclass
class SpikingSystemConfig:
    """Hardware deployment parameters."""

    signal_bits: int = 4
    weight_bits: int = 4
    crossbar_size: int = 32
    input_bits: Optional[int] = None  # defaults to signal_bits
    variation_sigma: float = 0.0      # memristor programming variation
    clustering_scope: str = "per_layer"
    signal_gain: float = 1.0          # IFC conversion gain, or "auto"
    seed: int = 0
    spare_tile_fraction: float = 0.0  # redundant crossbars for self-healing

    @property
    def effective_input_bits(self) -> int:
        return self.input_bits if self.input_bits is not None else self.signal_bits


@dataclass
class SpikeStatistics:
    """Spike activity of one inference batch (drives the energy model)."""

    per_layer_counts: Dict[str, float] = field(default_factory=dict)
    window: int = 0

    @property
    def total_mean_spikes(self) -> float:
        """Mean spikes emitted per sample across all tapped layers."""
        return float(sum(self.per_layer_counts.values()))


class SpikingSystem:
    """A network deployed on the simulated memristor SNC."""

    def __init__(
        self,
        network: Module,
        mapping: MappingReport,
        config: SpikingSystemConfig,
        software_reference: Module,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.network = network
        self.mapping = mapping
        self.config = config
        self.software_reference = software_reference
        self.telemetry = telemetry
        self._engines: Dict[int, object] = {}

    def attach_telemetry(self, telemetry: Optional[Telemetry]) -> None:
        """Attach (or detach) the telemetry spine.

        Cached engines are dropped so the next run compiles instrumented
        (or uninstrumented) engines consistently.
        """
        self.telemetry = telemetry
        self._engines = {}

    def engine(self, module: Optional[Module] = None):
        """The compiled :class:`~repro.runtime.engine.InferenceEngine` serving
        ``module`` (the hardware network by default).

        Engines run in float64 so compiled plans reproduce the graph
        executor bit for bit; crossbar steps read the live arrays, so fault
        injection and remediation take effect without a re-trace.
        """
        # Imported lazily: repro.runtime.guard (pulled in by the package
        # __init__) imports this module back.
        from repro.runtime.engine import EngineConfig, InferenceEngine

        module = module if module is not None else self.network
        eng = self._engines.get(id(module))
        if eng is None:
            eng = InferenceEngine(
                module, EngineConfig(dtype=np.float64), telemetry=self.telemetry
            )
            self._engines[id(module)] = eng
        return eng

    def infer(self, images: np.ndarray, use_engine: bool = True) -> np.ndarray:
        """Run spike-domain inference; returns logits ``(batch, classes)``.

        ``use_engine=False`` forces the autograd graph executor (needed by
        callers that attach forward hooks, e.g. spike statistics).
        """
        if use_engine:
            return self.engine().run(images)
        with no_grad():
            return self.network(Tensor(images)).data

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        return self.infer(images).argmax(axis=1)

    def infer_stream(self, stream, temporal_config=None):
        """Temporal inference over one event stream: sliding M-bit count
        windows replayed through the compiled engine, rate- or
        latency-coded readout.  Returns a
        :class:`~repro.snc.temporal.TemporalResult`.
        """
        from repro.snc.temporal import infer_stream

        return infer_stream(self, stream, temporal_config)

    def accuracy(self, dataset: Dataset, batch_size: int = 128) -> float:
        """Top-1 accuracy of the hardware twin on a dataset (streamed
        through the compiled engine in micro-batches)."""
        engine = self.engine()
        correct = 0
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            predictions = engine.run(images).argmax(axis=1)
            correct += int((predictions == labels).sum())
        return correct / len(dataset)

    def health_check(
        self,
        images: Optional[np.ndarray] = None,
        code_tolerance: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        """Probe every mapped crossbar; returns a
        :class:`~repro.snc.diagnosis.HealthReport`."""
        from repro.snc.diagnosis import DEFAULT_CODE_TOLERANCE, diagnose

        return diagnose(
            self,
            images=images,
            code_tolerance=code_tolerance if code_tolerance is not None else DEFAULT_CODE_TOLERANCE,
            seed=seed,
        )

    def remediate(self, config=None):
        """Run the tiered repair ladder; returns a
        :class:`~repro.snc.remediation.RemediationReport`."""
        from repro.snc.remediation import run_remediation_ladder

        return run_remediation_ladder(self, config)

    def guarded(self, config=None):
        """Wrap this system for guarded serving (health checks, repair,
        software fallback) — see :mod:`repro.runtime.guard`."""
        from repro.runtime.guard import GuardedSpikingSystem

        return GuardedSpikingSystem(self, config)

    def serve(self, serve_config=None, guard_config=None,
              warmup_images: Optional[np.ndarray] = None,
              telemetry: Optional[Telemetry] = None):
        """A :class:`~repro.serve.server.ModelServer` over this system —
        concurrent traffic, micro-batched onto per-replica engines.

        Replica engines compile the hardware network in float64 (same
        policy as :meth:`engine`, so served logits match direct
        inference bit for bit); the degraded path routes through a
        :class:`~repro.runtime.guard.GuardedSpikingSystem`, whose health
        probe doubles as each replica's probe.  See ``docs/serving.md``.
        """
        # Lazy imports: repro.serve and repro.runtime sit above this module.
        from repro.runtime.engine import EngineConfig, InferenceEngine
        from repro.runtime.guard import GuardedSpikingSystem
        from repro.serve import ModelServer

        telemetry = telemetry if telemetry is not None else self.telemetry
        guard = GuardedSpikingSystem(self, guard_config, telemetry=telemetry)

        def probe() -> bool:
            report = guard.check_health()
            fraction = report.deviating_pairs / max(report.total_pairs, 1)
            return fraction <= guard.config.max_deviating_fraction

        return ModelServer(
            engine_factory=lambda: InferenceEngine(
                self.network, EngineConfig(dtype=np.float64), telemetry=telemetry
            ),
            config=serve_config,
            fallback=guard.infer,
            health_probe=probe,
            warmup_images=warmup_images,
            telemetry=telemetry,
        )

    def verify_equivalence(self, images: np.ndarray, atol: float = 1e-6) -> bool:
        """Check hardware logits equal the quantized software model's.

        Holds exactly for ideal devices; fails (by design) once
        ``variation_sigma > 0``.  Both sides run through compiled engines
        (bit-identical to their graph executors), so probing is cheap
        enough to use as a diagnosis test vector.
        """
        hardware = self.infer(images)
        software = self.engine(self.software_reference).run(images)
        return bool(np.allclose(hardware, software, atol=atol))

    def spike_statistics(self, images: np.ndarray) -> SpikeStatistics:
        """Mean per-sample spike counts at every quantized activation.

        An activation value *is* its spike count, so summing the integer
        signals counts the spikes crossing each layer boundary.
        """
        stats = SpikeStatistics(window=window_length(self.config.signal_bits))
        taps: List = []
        quantizers = [
            (name, module)
            for name, module in self.network.named_modules()
            if isinstance(module, QuantizedActivation)
        ]

        def make_hook(layer_name: str):
            def hook(module, inputs, output) -> None:
                # Output values are counts / gain; recover raw spike counts.
                stats.per_layer_counts[layer_name] = float(
                    output.data.sum() * module.gain / output.shape[0]
                )
            return hook

        for name, module in quantizers:
            taps.append(module.register_forward_hook(make_hook(name)))
        try:
            # Hooks only fire on the graph executor, not on compiled plans.
            self.infer(images, use_engine=False)
        finally:
            for remover in taps:
                remover()
        if self.telemetry is not None:
            self._record_activity(stats, batch_rows=len(images))
        return stats

    def estimated_energy_uj(self, stats: SpikeStatistics) -> float:
        """Estimated crossbar energy per classified sample, in µJ.

        Applies the fitted Table 5 energy model
        (:class:`~repro.snc.cost.EnergyParameters`) to *measured* spike
        activity: dynamic energy charges every emitted output spike (IFC
        fire + counter toggle + routing), static energy charges every
        mapped differential pair for the window the arrays stay biased.
        """
        from repro.snc.cost import EnergyParameters, generic_speed_profile

        energy = EnergyParameters()
        num_layers = max(len(stats.per_layer_counts), 1)
        profile = generic_speed_profile(num_layers)
        inference_time_us = (stats.window + 1 + profile.overhead_cycles) / profile.f_mhz
        cells = self.mapping.total_crossbars * self.config.crossbar_size ** 2 * 2
        dynamic = energy.e_output_event_uj * stats.total_mean_spikes
        static = energy.p_cell_uw * cells * inference_time_us
        return dynamic + static

    def _record_activity(self, stats: SpikeStatistics, batch_rows: int) -> None:
        """Publish one batch's spike activity to the telemetry registry."""
        registry = self.telemetry.registry
        total_spikes = 0.0
        for layer, mean_count in stats.per_layer_counts.items():
            batch_spikes = mean_count * batch_rows
            total_spikes += batch_spikes
            registry.counter(
                "snc_spikes_total",
                help="Output spikes emitted, by quantized-activation layer",
                layer=layer,
            ).inc(batch_spikes)
        # Every output spike is one integrate-and-fire conversion.
        registry.counter(
            "snc_ifc_fires_total", help="Integrate-and-fire converter fire events",
        ).inc(total_spikes)
        registry.counter(
            "snc_samples_total", help="Samples measured for spike activity",
        ).inc(batch_rows)
        registry.gauge(
            "snc_spike_window_cycles", help="Spike window length (2^M - 1 cycles)",
        ).set(stats.window)
        registry.gauge(
            "snc_energy_estimate_uj",
            help="Estimated crossbar energy per sample (fitted Table 5 model)",
        ).set(self.estimated_energy_uj(stats))
        registry.gauge(
            "snc_mapped_crossbars", help="Crossbars occupied by the deployment",
        ).set(self.mapping.total_crossbars)


def build_spiking_system(
    trained_model: Module,
    config: SpikingSystemConfig,
    calibration_images: np.ndarray,
) -> SpikingSystem:
    """Deploy a trained float network onto the simulated SNC.

    Returns a :class:`SpikingSystem` whose ``software_reference`` is the
    quantized-but-float-executed twin (same quantizers, exact matmuls) used
    for equivalence checks.
    """
    deploy_config = DeploymentConfig(
        signal_bits=config.signal_bits,
        weight_bits=config.weight_bits,
        weight_mode="clustered",
        clustering_scope=config.clustering_scope,
        fold_bn=True,
        include_bias=True,
        input_bits=config.effective_input_bits,
        signal_gain=config.signal_gain,
    )
    software, info = deploy_model(trained_model, deploy_config, calibration_images)
    if info.clustering is None:
        raise RuntimeError("deployment produced no clustering report")

    hardware = clone_module(software)
    rng = np.random.default_rng(config.seed)
    device = MemristorModel(
        levels=2 ** (config.weight_bits - 1) + 1,
        variation_sigma=config.variation_sigma,
    )
    # `software` is wrapped in _PrependInput; the network body carries the
    # weight layers.  map_network keys scales by module names relative to
    # the body, so map on the body of the hardware clone.
    mapping = map_network(
        hardware.network if hasattr(hardware, "network") else hardware,
        info.clustering,
        size=config.crossbar_size,
        device=device,
        rng=rng,
        spare_fraction=config.spare_tile_fraction,
    )
    return SpikingSystem(
        network=hardware,
        mapping=mapping,
        config=config,
        software_reference=software,
    )
