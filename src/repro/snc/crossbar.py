"""Memristor crossbar arrays and the Eq. 1 partitioning rule.

A crossbar of size ``t × t`` computes an analog vector-matrix product in a
single step: wordline voltages (inputs) drive currents through the
programmed conductances, and each bitline sums its column by Kirchhoff's
law.  Signed weights use the standard *differential pair*: every logical
weight owns two devices, ``g⁺`` and ``g⁻``; the column output is the
difference of the two summed currents.

A network layer whose unrolled weight matrix is larger than one crossbar is
tiled.  The paper's Eq. 1 counts the tiles:

    L^i = ⌈J^i / t⌉ · ⌈(s^i · s^i · J^{i−1}) / t⌉

(columns ⌈cols/t⌉ times rows ⌈rows/t⌉).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.snc.memristor import MemristorModel, levels_for_bits

DEFAULT_CROSSBAR_SIZE = 32  # the paper's experimental setting (Sec. 4.1)


def crossbars_required(rows: int, cols: int, size: int = DEFAULT_CROSSBAR_SIZE) -> int:
    """Eq. 1: number of ``size × size`` crossbars for a rows×cols matrix."""
    if rows < 1 or cols < 1:
        raise ValueError(f"matrix dimensions must be positive, got {rows}×{cols}")
    if size < 1:
        raise ValueError(f"crossbar size must be positive, got {size}")
    return math.ceil(cols / size) * math.ceil(rows / size)


@dataclass
class Crossbar:
    """One physical ``rows × cols`` differential-pair crossbar tile.

    ``g_plus`` and ``g_minus`` hold the programmed conductances.  The tile
    does not know about weight scales; :class:`CrossbarArray` tracks the
    mapping from conductance differences back to weight units.

    ``stuck_plus`` / ``stuck_minus`` are optional boolean masks marking
    devices whose filament is defective (stuck-at, see
    :mod:`repro.snc.faults`): their conductance can be *read* but no
    programming pulse changes it.  ``None`` means a pristine tile.
    """

    g_plus: np.ndarray
    g_minus: np.ndarray
    stuck_plus: Optional[np.ndarray] = None
    stuck_minus: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.g_plus.shape != self.g_minus.shape:
            raise ValueError("differential pair shapes must match")
        if self.g_plus.ndim != 2:
            raise ValueError("conductance matrices must be 2-D")

    @property
    def shape(self) -> tuple:
        return self.g_plus.shape

    def ensure_stuck_masks(self) -> None:
        """Allocate all-healthy stuck masks if the tile has none yet."""
        if self.stuck_plus is None:
            self.stuck_plus = np.zeros(self.shape, dtype=bool)
        if self.stuck_minus is None:
            self.stuck_minus = np.zeros(self.shape, dtype=bool)

    def writable_plus(self) -> np.ndarray:
        """Mask of g⁺ devices that still respond to programming pulses."""
        return ~self.stuck_plus if self.stuck_plus is not None else np.ones(self.shape, dtype=bool)

    def writable_minus(self) -> np.ndarray:
        """Mask of g⁻ devices that still respond to programming pulses."""
        return ~self.stuck_minus if self.stuck_minus is not None else np.ones(self.shape, dtype=bool)

    def multiply(self, voltages: np.ndarray) -> np.ndarray:
        """Analog MVM: differential column currents for input ``voltages``.

        ``voltages`` is ``(..., rows)``; returns ``(..., cols)`` currents in
        amperes (times whatever unit ``voltages`` carries).
        """
        differential = self.g_plus - self.g_minus
        return voltages @ differential


class CrossbarArray:
    """A logical weight matrix tiled over physical crossbars.

    Parameters
    ----------
    weight_codes:
        Integer weight codes ``D`` with ``|code| ≤ 2^(bits−1)``, shaped
        ``(rows, cols)`` — i.e. the *transposed* layer weight so that
        inputs ride wordlines and outputs ride bitlines (Fig. 2).
    bits:
        Weight bit width N; sets the per-device level count.
    scale:
        Weight value represented by code 1 times ``2^bits`` — i.e. the
        clustering scale: ``weight = scale · code / 2^bits``.
    size:
        Physical crossbar side ``t``.
    device:
        Memristor technology; defaults to the ideal model with exactly the
        levels N bits need.
    rng:
        Used only when the device model has programming variation.
    """

    def __init__(
        self,
        weight_codes: np.ndarray,
        bits: int,
        scale: float = 1.0,
        size: int = DEFAULT_CROSSBAR_SIZE,
        device: Optional[MemristorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        weight_codes = np.asarray(weight_codes)
        if weight_codes.ndim != 2:
            raise ValueError(f"weight_codes must be 2-D, got {weight_codes.shape}")
        half = 2 ** (bits - 1)
        if np.any(np.abs(weight_codes) > half):
            raise ValueError(f"codes exceed ±{half} for {bits}-bit weights")
        self.bits = bits
        self.scale = scale
        self.size = size
        self.rows, self.cols = weight_codes.shape
        self.device = device or MemristorModel(levels=levels_for_bits(bits))
        self.weight_codes = weight_codes.astype(np.int64)

        # Differential programming: positive codes on g⁺, negatives on g⁻.
        plus_levels = np.clip(self.weight_codes, 0, None)
        minus_levels = np.clip(-self.weight_codes, 0, None)
        g_plus = self.device.program(plus_levels, rng)
        g_minus = self.device.program(minus_levels, rng)

        self.tiles = []
        for row_start in range(0, self.rows, size):
            row_tiles = []
            for col_start in range(0, self.cols, size):
                row_slice = slice(row_start, min(row_start + size, self.rows))
                col_slice = slice(col_start, min(col_start + size, self.cols))
                row_tiles.append(
                    Crossbar(g_plus[row_slice, col_slice], g_minus[row_slice, col_slice])
                )
            self.tiles.append(row_tiles)
        self.spare_tiles_remaining = 0
        self.remapped_tiles: list = []

    @property
    def num_crossbars(self) -> int:
        """Physical tile count — equals Eq. 1 for this matrix."""
        return sum(len(row) for row in self.tiles)

    def provision_spares(self, n: int) -> None:
        """Reserve ``n`` unprogrammed spare crossbars for tile remapping.

        Spares model redundant physical arrays placed next to the active
        ones at layout time; :meth:`replace_tile` consumes them.
        """
        if n < 0:
            raise ValueError(f"spare count must be >= 0, got {n}")
        self.spare_tiles_remaining = int(n)

    def tile_codes(self, tile_row: int, tile_col: int) -> np.ndarray:
        """The intended integer codes of one tile's slice of the matrix."""
        tile = self.tiles[tile_row][tile_col]
        rows, cols = tile.shape
        row_start = tile_row * self.size
        col_start = tile_col * self.size
        return self.weight_codes[row_start : row_start + rows, col_start : col_start + cols]

    def realized_codes(self) -> np.ndarray:
        """The code matrix the physical devices actually realize.

        ``(g⁺ − g⁻) / g_step`` per pair; equals :attr:`weight_codes` for an
        ideal array, deviates under variation or stuck faults.
        """
        step = self.device.g_step
        realized = np.zeros((self.rows, self.cols))
        for tile_row_index, row_tiles in enumerate(self.tiles):
            row_start = tile_row_index * self.size
            for tile_col_index, tile in enumerate(row_tiles):
                col_start = tile_col_index * self.size
                rows, cols = tile.shape
                realized[row_start : row_start + rows, col_start : col_start + cols] = (
                    tile.g_plus - tile.g_minus
                ) / step
        return realized

    def replace_tile(
        self,
        tile_row: int,
        tile_col: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Crossbar:
        """Remap one damaged tile onto a spare crossbar.

        The spare is pristine (no stuck devices) and is programmed from the
        intended codes with this array's device model.  Consumes one spare;
        raises :class:`RuntimeError` when none remain.
        """
        if self.spare_tiles_remaining < 1:
            raise RuntimeError("no spare crossbars remaining for this array")
        codes = self.tile_codes(tile_row, tile_col)
        plus_levels = np.clip(codes, 0, None)
        minus_levels = np.clip(-codes, 0, None)
        fresh = Crossbar(
            self.device.program(plus_levels, rng),
            self.device.program(minus_levels, rng),
        )
        self.tiles[tile_row][tile_col] = fresh
        self.spare_tiles_remaining -= 1
        self.remapped_tiles.append((tile_row, tile_col))
        return fresh

    def multiply_codes(self, inputs: np.ndarray) -> np.ndarray:
        """Exact integer MVM in code units: ``inputs @ weight_codes``.

        This is what an ideal (variation-free) crossbar computes, expressed
        in integers; the analog path below must agree with it after current
        normalization.
        """
        return np.asarray(inputs) @ self.weight_codes

    def multiply_analog(self, inputs: np.ndarray) -> np.ndarray:
        """Analog MVM via the tiles, returned in *code units*.

        Tiles along the row direction accumulate partial sums (extra
        digital adds in hardware); currents convert back to code units by
        the conductance step ``g_step``.  With an ideal device this equals
        :meth:`multiply_codes` up to float rounding; with variation it
        differs, which is how defect studies are run.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        batch_shape = inputs.shape[:-1]
        if inputs.shape[-1] != self.rows:
            raise ValueError(f"expected last dim {self.rows}, got {inputs.shape[-1]}")
        output = np.zeros(batch_shape + (self.cols,))
        for tile_row_index, row_tiles in enumerate(self.tiles):
            row_start = tile_row_index * self.size
            row_slice = slice(row_start, min(row_start + self.size, self.rows))
            segment = inputs[..., row_slice]
            for tile_col_index, tile in enumerate(row_tiles):
                col_start = tile_col_index * self.size
                col_slice = slice(col_start, col_start + tile.shape[1])
                output[..., col_slice] += tile.multiply(segment)
        # Currents carry an offset-free differential; one code unit of
        # weight contributes one g_step of conductance.
        return output / self.device.g_step

    def weights(self) -> np.ndarray:
        """The weight values this array realizes: ``scale · codes / 2^bits``."""
        return self.scale * self.weight_codes / float(2 ** self.bits)
