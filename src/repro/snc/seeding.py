"""Deterministic RNG plumbing for defect studies.

Every stochastic SNC API (fault injection, Monte-Carlo yield, diagnosis,
remediation) accepts either an explicit ``numpy.random.Generator`` or an
integer ``seed``; :func:`resolve_rng` normalizes the two.  Remediation
additionally needs *per-device* streams that do not depend on iteration
order — :func:`substream` derives one from a base seed plus coordinates,
so re-running a repair on the same device replays the same pulse noise
(the property that makes the repair ladder idempotent).
"""

from __future__ import annotations

import zlib
from typing import Optional, Sequence, Union

import numpy as np


def resolve_rng(
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.random.Generator:
    """Return ``rng`` if given, else a fresh generator seeded by ``seed``.

    Passing both is an error — callers must choose one source of
    randomness so studies stay reproducible.
    """
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either seed or rng, not both")
        return rng
    return np.random.default_rng(seed)


def stable_hash(token: str) -> int:
    """A process-independent 32-bit hash of a string (unlike ``hash()``)."""
    return zlib.crc32(token.encode("utf-8"))


def substream(
    seed: int, token: str, coordinates: Sequence[Union[int, np.integer]] = ()
) -> np.random.Generator:
    """A generator keyed by ``(seed, token, *coordinates)``.

    Two calls with identical arguments yield identical streams regardless
    of how many other streams were consumed in between.
    """
    entropy = [int(seed) & 0xFFFFFFFF, stable_hash(token)]
    entropy.extend(int(c) & 0xFFFFFFFF for c in coordinates)
    return np.random.default_rng(entropy)
