"""Cycle-level simulation of the layer pipeline.

The analytic speed model (`repro.snc.cost`) assumes a uniform spike window
in every stage, which makes throughput `1/(window + overhead)` by
inspection.  This module *simulates* the pipeline at cycle granularity —
each inference occupies layer *l* for that layer's window — which

1. validates the analytic model (uniform windows must reproduce it
   exactly), and
2. answers questions the closed form cannot: **mixed-precision** pipelines
   (different M per layer — an extension the paper's uniform-M design
   deliberately avoids, quantified here) and transient latency before
   steady state.

The simulation is a classic synchronous flow-shop recurrence:

    start[l, i]  = max(finish[l−1, i], finish[l, i−1])
    finish[l, i] = start[l, i] + window[l]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.models.specs import NetworkSpec
from repro.snc.cost import PAPER_SPEED_PROFILES, SpeedProfile, generic_speed_profile


@dataclass(frozen=True)
class PipelineStats:
    """Outcome of one pipeline simulation (all in cycles)."""

    num_layers: int
    num_inferences: int
    first_latency: int        # cycles until inference 0 completes
    total_cycles: int         # cycles until the last inference completes
    throughput: float         # inferences per cycle, steady state
    bottleneck_layer: int     # index of the slowest stage

    @property
    def steady_interval(self) -> float:
        """Cycles between consecutive completions in steady state."""
        return 1.0 / self.throughput if self.throughput > 0 else float("inf")


def simulate_pipeline(
    layer_windows: Sequence[int], num_inferences: int = 64,
    telemetry=None,
) -> PipelineStats:
    """Run the flow-shop recurrence and measure latency/throughput.

    With ``telemetry`` (a :class:`repro.obs.Telemetry`), the resulting
    cycle counts are published as ``snc_pipeline_*`` gauges so pipeline
    behaviour shows up next to the serving and spike-activity metrics.
    """
    windows = [int(w) for w in layer_windows]
    if not windows or any(w < 1 for w in windows):
        raise ValueError("layer_windows must be non-empty positive integers")
    if num_inferences < 2:
        raise ValueError("need at least 2 inferences to measure throughput")

    num_layers = len(windows)
    # Vectorized flow-shop recurrence.  Expanding
    #     finish[l, i] = max(finish[l-1, i], finish[l, i-1]) + w_l
    # along i shows every inference at layer l finishes exactly
    #     finish[l, i] = (i + 1) * w_l + max_{j <= i}(finish[l-1, j] - j * w_l)
    # (inference j blocks the stage for w_l cycles each, so whichever
    # upstream completion dominates pays the remaining (i - j + 1) windows).
    # The inner max over j is a running cummax, so each layer is O(N) numpy
    # work instead of an O(N) Python loop — exact integer arithmetic either
    # way, so results are bit-identical to the scalar recurrence.
    idx = np.arange(num_inferences, dtype=np.int64)
    finish = np.zeros(num_inferences, dtype=np.int64)  # layer -1: inputs ready at 0
    for w in windows:
        finish = w * (idx + 1) + np.maximum.accumulate(finish - w * idx)

    completions = finish
    # Steady-state interval: difference between the last two completions.
    interval = int(completions[-1] - completions[-2])
    stats = PipelineStats(
        num_layers=num_layers,
        num_inferences=num_inferences,
        first_latency=int(completions[0]),
        total_cycles=int(completions[-1]),
        throughput=1.0 / interval,
        bottleneck_layer=int(np.argmax(windows)),
    )
    if telemetry is not None:
        registry = telemetry.registry
        registry.gauge(
            "snc_pipeline_first_latency_cycles",
            help="Cycles until the first inference completes",
        ).set(stats.first_latency)
        registry.gauge(
            "snc_pipeline_interval_cycles",
            help="Steady-state cycles between completions",
        ).set(stats.steady_interval)
        registry.gauge(
            "snc_pipeline_bottleneck_layer",
            help="Index of the slowest pipeline stage",
        ).set(stats.bottleneck_layer)
        registry.counter(
            "snc_pipeline_simulations_total", help="Pipeline simulations run",
        ).inc()
    return stats


def window_cycles(signal_bits: int, overhead_cycles: float = 0.0) -> int:
    """Stage occupancy for an M-bit spike window (+ rounded overhead)."""
    if signal_bits < 1:
        raise ValueError(f"signal_bits must be >= 1, got {signal_bits}")
    return (2 ** signal_bits - 1) + int(round(overhead_cycles))


def uniform_pipeline_speed_mhz(
    spec: NetworkSpec,
    signal_bits: int,
    profile: Optional[SpeedProfile] = None,
    num_inferences: int = 64,
) -> float:
    """Simulated throughput of a uniform-M pipeline, in MHz.

    With uniform windows the simulation must agree with the analytic
    `SpeedProfile.speed_mhz` (tested) — the clock that converts cycles to
    time is recovered from the profile.
    """
    profile = profile or PAPER_SPEED_PROFILES.get(
        spec.name, generic_speed_profile(spec.num_layers)
    )
    cycles = window_cycles(signal_bits, profile.overhead_cycles) + 1
    stats = simulate_pipeline([cycles] * spec.num_layers, num_inferences)
    # profile.f_mhz is the effective per-stage clock budget: one stage slot
    # per cycle at f_mhz means completions every `cycles`/f_mhz µs.
    return profile.f_mhz * stats.throughput


def mixed_precision_speed_mhz(
    spec: NetworkSpec,
    bits_per_layer: Sequence[int],
    profile: Optional[SpeedProfile] = None,
    num_inferences: int = 64,
) -> float:
    """Simulated throughput with per-layer signal precisions.

    The pipeline completes one inference per *bottleneck* window — so
    lowering precision everywhere except one layer buys almost nothing,
    which is the quantitative argument for the paper's uniform bit width.
    """
    if len(bits_per_layer) != spec.num_layers:
        raise ValueError(
            f"{len(bits_per_layer)} precisions for {spec.num_layers} layers"
        )
    profile = profile or PAPER_SPEED_PROFILES.get(
        spec.name, generic_speed_profile(spec.num_layers)
    )
    windows = [
        window_cycles(bits, profile.overhead_cycles) + 1 for bits in bits_per_layer
    ]
    stats = simulate_pipeline(windows, num_inferences)
    return profile.f_mhz * stats.throughput
