"""Chip programming image: export / load deployed crossbar contents.

A real deployment toolchain ends by emitting a *programming image* — for
every crossbar tile, the target conductance level of every device — which
the on-chip write controller then realizes.  This module produces exactly
that from a mapped network, as a single ``.npz``:

- per weight layer: the integer code matrix (rows × cols, bias rows
  included), the clustering scale, bit width and geometry metadata;
- global metadata: crossbar size, signal bits, IFC gain.

``load_programming_image`` reconstructs a :class:`~repro.snc.crossbar.
CrossbarArray` per layer (optionally with device variation — programming a
real chip from the image), enabling chip-to-chip studies without
re-running deployment.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nn.modules import Module
from repro.snc.crossbar import CrossbarArray
from repro.snc.mapping import SpikingConv2d, SpikingLinear
from repro.snc.memristor import MemristorModel

FORMAT_VERSION = 1


@dataclass(frozen=True)
class LayerImage:
    """One layer's slice of the programming image."""

    name: str
    kind: str
    codes: np.ndarray  # (rows_incl_bias, cols) integer weight codes
    scale: float
    bits: int
    bias_rows: int


def _spiking_layers(network: Module) -> List[tuple]:
    layers = []
    for name, module in network.named_modules():
        if isinstance(module, SpikingConv2d):
            layers.append((name, "conv", module))
        elif isinstance(module, SpikingLinear):
            layers.append((name, "fc", module))
    return layers


def export_programming_image(network: Module, path: str) -> Dict[str, dict]:
    """Write the programming image of a mapped network to ``path`` (.npz).

    Returns the metadata dict (also stored inside the archive as JSON).
    """
    layers = _spiking_layers(network)
    if not layers:
        raise ValueError("network has no mapped crossbar layers; run map_network first")

    arrays: Dict[str, np.ndarray] = {}
    metadata: Dict[str, dict] = {}
    for name, kind, module in layers:
        array = module.array
        arrays[f"{name}.codes"] = array.weight_codes
        metadata[name] = {
            "kind": kind,
            "scale": array.scale,
            "bits": array.bits,
            "bias_rows": module._n_bias_rows,
            "crossbar_size": array.size,
            "num_crossbars": array.num_crossbars,
        }
    arrays["__meta__"] = np.frombuffer(
        json.dumps({"version": FORMAT_VERSION, "layers": metadata}).encode(),
        dtype=np.uint8,
    )
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return metadata


def load_programming_image(path: str) -> Dict[str, LayerImage]:
    """Read a programming image back into per-layer code matrices."""
    with np.load(path) as archive:
        meta_bytes = archive["__meta__"].tobytes()
        meta = json.loads(meta_bytes.decode())
        if meta.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported image version {meta.get('version')}")
        layers: Dict[str, LayerImage] = {}
        for name, info in meta["layers"].items():
            codes = archive[f"{name}.codes"]
            layers[name] = LayerImage(
                name=name,
                kind=info["kind"],
                codes=codes,
                scale=info["scale"],
                bits=info["bits"],
                bias_rows=info["bias_rows"],
            )
    return layers


def program_chip(
    image: Dict[str, LayerImage],
    crossbar_size: int = 32,
    variation_sigma: float = 0.0,
    seed: int = 0,
) -> Dict[str, CrossbarArray]:
    """Realize a programming image as physical crossbar arrays.

    With ``variation_sigma > 0`` every chip programmed from the same image
    differs (a new "die"); the seed picks the die.
    """
    rng = np.random.default_rng(seed)
    chip: Dict[str, CrossbarArray] = {}
    for name, layer in image.items():
        device = MemristorModel(
            levels=2 ** (layer.bits - 1) + 1, variation_sigma=variation_sigma
        )
        chip[name] = CrossbarArray(
            layer.codes,
            bits=layer.bits,
            scale=layer.scale,
            size=crossbar_size,
            device=device,
            rng=rng,
        )
    return chip


def install_chip(network: Module, chip: Dict[str, CrossbarArray]) -> int:
    """Swap a network's crossbar arrays for a programmed chip's arrays.

    Layer names must match the image that built ``chip``.  Returns the
    number of layers installed.
    """
    installed = 0
    for name, kind, module in _spiking_layers(network):
        if name not in chip:
            raise KeyError(f"chip image missing layer {name!r}")
        replacement = chip[name]
        if replacement.weight_codes.shape != module.array.weight_codes.shape:
            raise ValueError(f"geometry mismatch for layer {name!r}")
        module.array = replacement
        installed += 1
    return installed
