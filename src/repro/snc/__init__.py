"""repro.snc — the memristor-based spiking neuromorphic substrate.

Implements the deployment platform of Sec. 2.2 and the system evaluation
of Sec. 4.5:

- :mod:`repro.snc.memristor` — device model (50 kΩ–1 MΩ window, discrete
  conductance states, programming variation).
- :mod:`repro.snc.crossbar` — differential-pair crossbar tiles, analog MVM,
  and the Eq. 1 partitioning rule.
- :mod:`repro.snc.spikes` / :mod:`repro.snc.ifc` — rate coding and
  integrate-and-fire + counter circuits.
- :mod:`repro.snc.mapping` — Fig. 2 network-to-crossbar mapping with
  drop-in crossbar-backed Conv2d/Linear modules.
- :mod:`repro.snc.system` — end-to-end deployed system with bit-exact
  software equivalence checking.
- :mod:`repro.snc.cost` — the calibrated speed/energy/area model behind
  Table 5 and Fig. 1a.
"""

from repro.snc.cost import (
    PAPER_SPEED_PROFILES,
    PAPER_TABLE5,
    AreaParameters,
    EnergyParameters,
    NetworkAggregates,
    RequantEnergyDelta,
    RequantEnergyParameters,
    SpeedProfile,
    SystemCost,
    aggregate_network,
    evaluate_system_cost,
    generic_speed_profile,
    layer_breakdown,
    requant_energy_delta,
    table5_row,
)
from repro.snc.crossbar import (
    DEFAULT_CROSSBAR_SIZE,
    Crossbar,
    CrossbarArray,
    crossbars_required,
)
from repro.snc.export import (
    LayerImage,
    export_programming_image,
    install_chip,
    load_programming_image,
    program_chip,
)
from repro.snc.faults import (
    FaultReport,
    inject_faults_into_network,
    inject_stuck_faults,
    realized_weight_error,
    rescue_by_pair_swap,
    rescue_network,
)
from repro.snc.diagnosis import (
    DEFAULT_CODE_TOLERANCE,
    CrossbarHealth,
    HealthReport,
    diagnose,
    probe_array,
)
from repro.snc.ifc import IntegrateAndFire, ifc_for_layer
from repro.snc.irdrop import (
    DEFAULT_WIRE_RESISTANCE_OHMS,
    IRDropResult,
    ir_drop_error_vs_size,
    solve_crossbar_currents,
)
from repro.snc.mapping import (
    LayerMapping,
    MappingReport,
    SpikingConv2d,
    SpikingLinear,
    map_network,
    weight_codes_from_quantized,
)
from repro.snc.memristor import (
    R_OFF_OHMS,
    R_ON_OHMS,
    MemristorModel,
    levels_for_bits,
    model_for_bits,
)
from repro.snc.montecarlo import YieldReport, estimate_yield, yield_vs_variation
from repro.snc.nir import (
    NIR_FORMAT_VERSION,
    NIRGraph,
    NIRNode,
    export_nir,
    from_nir,
    import_nir,
    load_nir,
    to_nir,
    validate_nir,
)
from repro.snc.pipeline_sim import (
    PipelineStats,
    mixed_precision_speed_mhz,
    simulate_pipeline,
    uniform_pipeline_speed_mhz,
    window_cycles,
)
from repro.snc.programming import (
    ProgrammingCost,
    ProgrammingModel,
    programming_cost,
    programming_cost_ratio,
)
from repro.snc.remediation import (
    RemediationConfig,
    RemediationReport,
    TierOutcome,
    repair_tile_closed_loop,
    run_remediation_ladder,
)
from repro.snc.seeding import resolve_rng, substream
from repro.snc.spikes import (
    decode_counts,
    encode_bernoulli,
    encode_uniform,
    encoding_is_lossless,
    window_length,
)
from repro.snc.system import (
    SpikeStatistics,
    SpikingSystem,
    SpikingSystemConfig,
    build_spiking_system,
)
from repro.snc.temporal import (
    StreamTiming,
    TemporalConfig,
    TemporalResult,
    infer_stream,
    stream_accuracy,
    stream_timing,
    stream_to_frames,
)

__all__ = [
    "MemristorModel",
    "levels_for_bits",
    "model_for_bits",
    "R_ON_OHMS",
    "R_OFF_OHMS",
    "Crossbar",
    "CrossbarArray",
    "crossbars_required",
    "DEFAULT_CROSSBAR_SIZE",
    "window_length",
    "encode_uniform",
    "encode_bernoulli",
    "decode_counts",
    "encoding_is_lossless",
    "IntegrateAndFire",
    "ifc_for_layer",
    "SpikingConv2d",
    "SpikingLinear",
    "map_network",
    "MappingReport",
    "LayerMapping",
    "weight_codes_from_quantized",
    "SpikingSystem",
    "SpikingSystemConfig",
    "SpikeStatistics",
    "build_spiking_system",
    "SystemCost",
    "SpeedProfile",
    "EnergyParameters",
    "AreaParameters",
    "NetworkAggregates",
    "aggregate_network",
    "evaluate_system_cost",
    "RequantEnergyDelta",
    "RequantEnergyParameters",
    "requant_energy_delta",
    "generic_speed_profile",
    "layer_breakdown",
    "table5_row",
    "PAPER_TABLE5",
    "PAPER_SPEED_PROFILES",
    "FaultReport",
    "inject_stuck_faults",
    "inject_faults_into_network",
    "realized_weight_error",
    "rescue_by_pair_swap",
    "rescue_network",
    "IRDropResult",
    "solve_crossbar_currents",
    "ir_drop_error_vs_size",
    "DEFAULT_WIRE_RESISTANCE_OHMS",
    "ProgrammingModel",
    "ProgrammingCost",
    "programming_cost",
    "programming_cost_ratio",
    "LayerImage",
    "export_programming_image",
    "load_programming_image",
    "program_chip",
    "install_chip",
    "NIR_FORMAT_VERSION",
    "NIRGraph",
    "NIRNode",
    "export_nir",
    "from_nir",
    "import_nir",
    "load_nir",
    "to_nir",
    "validate_nir",
    "PipelineStats",
    "simulate_pipeline",
    "window_cycles",
    "uniform_pipeline_speed_mhz",
    "mixed_precision_speed_mhz",
    "TemporalConfig",
    "TemporalResult",
    "StreamTiming",
    "infer_stream",
    "stream_accuracy",
    "stream_timing",
    "stream_to_frames",
    "YieldReport",
    "estimate_yield",
    "yield_vs_variation",
    "CrossbarHealth",
    "HealthReport",
    "diagnose",
    "probe_array",
    "DEFAULT_CODE_TOLERANCE",
    "RemediationConfig",
    "RemediationReport",
    "TierOutcome",
    "repair_tile_closed_loop",
    "run_remediation_ladder",
    "resolve_rng",
    "substream",
]
