"""Memristor programming (write) cost model.

The paper's Sec. 1 argues that although devices can afford 64 conductance
levels (6 bits, HP Labs [16]), "the heavy programming cost in speed and
circuit design are not acceptable" — which is why it targets 3–4-bit
weights.  This module quantifies that argument.

Programming a filamentary memristor to one of ``L`` levels uses iterative
*program-and-verify*: apply a pulse, read back, repeat until the
conductance falls inside the target level's tolerance band.  The band
shrinks ∝ 1/L, and for lognormal write noise the expected pulse count
grows roughly linearly in L (each halving of the band roughly doubles the
expected attempts):

    pulses(L) ≈ base + k · L

Chip-level cost then follows from the device count (differential pairs ×
Eq. 1 crossbar tiling), write parallelism (one row of one crossbar at a
time — sneak paths forbid parallel writes within an array, but distinct
crossbars program concurrently up to a power budget), pulse width, and
pulse energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.specs import NetworkSpec
from repro.snc.cost import aggregate_network
from repro.snc.crossbar import DEFAULT_CROSSBAR_SIZE
from repro.snc.memristor import levels_for_bits


@dataclass(frozen=True)
class ProgrammingModel:
    """Write-path parameters (130 nm-flavoured defaults).

    Attributes
    ----------
    base_pulses:
        Fixed program-and-verify overhead per device (forming/reset).
    pulses_per_level:
        Incremental expected pulses per conductance level (tolerance-band
        narrowing).
    pulse_width_ns:
        Width of one programming pulse including the verify read.
    pulse_energy_pj:
        Energy of one pulse (write current × voltage × width).
    parallel_crossbars:
        How many crossbars the write power budget allows concurrently.
    """

    base_pulses: float = 2.0
    pulses_per_level: float = 0.5
    pulse_width_ns: float = 100.0
    pulse_energy_pj: float = 10.0
    parallel_crossbars: int = 8

    def __post_init__(self) -> None:
        if self.base_pulses < 0 or self.pulses_per_level < 0:
            raise ValueError("pulse counts must be non-negative")
        if self.pulse_width_ns <= 0 or self.pulse_energy_pj <= 0:
            raise ValueError("pulse width/energy must be positive")
        if self.parallel_crossbars < 1:
            raise ValueError("parallel_crossbars must be >= 1")

    def expected_pulses(self, levels: int) -> float:
        """Expected program-and-verify pulses to hit one of ``levels``."""
        if levels < 2:
            raise ValueError(f"need at least 2 levels, got {levels}")
        return self.base_pulses + self.pulses_per_level * levels


@dataclass(frozen=True)
class ProgrammingCost:
    """Chip-level cost of writing one network's weights."""

    total_devices: int
    pulses_per_device: float
    total_pulses: float
    time_ms: float
    energy_uj: float


def programming_cost(
    spec: NetworkSpec,
    weight_bits: int,
    model: ProgrammingModel = ProgrammingModel(),
    crossbar_size: int = DEFAULT_CROSSBAR_SIZE,
) -> ProgrammingCost:
    """Cost of programming ``spec``'s weights at N-bit precision.

    Devices per crossbar: ``t²`` cells × 2 (differential pair).  Writes
    proceed row-by-row within a crossbar (``t`` rows × 2 planes serially),
    with ``parallel_crossbars`` arrays in flight.
    """
    if weight_bits < 1:
        raise ValueError(f"weight_bits must be >= 1, got {weight_bits}")
    aggregates = aggregate_network(spec, crossbar_size)
    levels = levels_for_bits(weight_bits)
    pulses_per_device = model.expected_pulses(levels)
    total_devices = aggregates.num_cells
    total_pulses = pulses_per_device * total_devices

    # Serial rows within a crossbar; one row's devices program in parallel
    # through the column drivers (each device still needs its own pulse
    # sequence, so a row costs the *max* expected pulses ≈ the mean here).
    rows_per_crossbar = crossbar_size * 2  # both differential planes
    row_time_ns = pulses_per_device * model.pulse_width_ns
    crossbar_time_ns = rows_per_crossbar * row_time_ns
    waves = -(-aggregates.num_crossbars // model.parallel_crossbars)  # ceil
    time_ms = waves * crossbar_time_ns * 1e-6

    energy_uj = total_pulses * model.pulse_energy_pj * 1e-6
    return ProgrammingCost(
        total_devices=total_devices,
        pulses_per_device=pulses_per_device,
        total_pulses=total_pulses,
        time_ms=time_ms,
        energy_uj=energy_uj,
    )


def programming_cost_ratio(
    spec: NetworkSpec, bits_a: int, bits_b: int,
    model: ProgrammingModel = ProgrammingModel(),
) -> float:
    """Time ratio of programming at ``bits_a`` vs ``bits_b`` precision."""
    cost_a = programming_cost(spec, bits_a, model)
    cost_b = programming_cost(spec, bits_b, model)
    return cost_a.time_ms / cost_b.time_ms
