"""Tiered, retraining-free remediation of diagnosed crossbar faults.

Given a :class:`~repro.snc.diagnosis.HealthReport`, a deployment
controller can repair a damaged chip without touching the trained model.
The ladder climbs three tiers, re-probing after each and stopping as soon
as the health spec is met:

1. **Closed-loop reprogramming** — every deviating pair is re-written with
   program-and-verify pulses (:class:`~repro.snc.programming.
   ProgrammingModel` prices the pulses).  A pair with one stuck device is
   *compensated*: the writable device is retargeted so the differential
   ``g⁺ − g⁻`` still realizes the intended code, as long as the required
   conductance stays inside the device window.  Retries are bounded; pulse
   noise comes from per-device :func:`~repro.snc.seeding.substream`\\ s, so
   a repeated repair replays identical pulses — the ladder is idempotent.
2. **Differential pair swap** — the existing
   :func:`~repro.snc.faults.rescue_by_pair_swap` reorients pairs whose
   swapped reading is closer to the intended code (this moves a stuck
   device to the role where compensation becomes feasible, so tier 1 runs
   once more after the swap).
3. **Spare-tile remapping** — tiles that remain out of spec are remapped
   onto spare crossbars provisioned at mapping time
   (:func:`~repro.snc.mapping.map_network` with ``spare_fraction``),
   worst tile first, until the spares run out.  Each logical tile owns at
   most one spare, so remapping is one-shot.

Every write is accepted only if it strictly reduces the pair's code error,
which — together with the deterministic pulse streams — guarantees the
ladder never makes a chip worse and running it twice changes nothing the
second time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.snc.crossbar import CrossbarArray
from repro.snc.diagnosis import (
    DEFAULT_CODE_TOLERANCE,
    HealthReport,
    diagnose,
)
from repro.snc.faults import rescue_by_pair_swap
from repro.snc.programming import ProgrammingModel
from repro.snc.seeding import substream


@dataclass
class RemediationConfig:
    """Knobs of the repair ladder.

    ``target_deviating_fraction`` is the health spec: the ladder stops as
    soon as the fraction of deviating pairs (network-wide) falls to or
    below it.  ``max_retries`` bounds program-and-verify attempts per
    device pair; ``seed`` keys the deterministic pulse-noise streams.
    """

    code_tolerance: float = DEFAULT_CODE_TOLERANCE
    target_deviating_fraction: float = 0.0
    max_retries: int = 6
    seed: int = 0
    use_pair_swap: bool = True
    use_spares: bool = True
    programming: ProgrammingModel = field(default_factory=ProgrammingModel)


@dataclass
class TierOutcome:
    """What one rung of the ladder did."""

    tier: str
    actions: int                 # pairs rewritten / pairs swapped / tiles remapped
    deviating_before: int
    deviating_after: int
    pulses: float = 0.0          # program-and-verify pulses spent

    @property
    def recovered_pairs(self) -> int:
        return self.deviating_before - self.deviating_after


@dataclass
class RemediationReport:
    """Full ladder outcome, including before/after health."""

    initial: HealthReport
    final: HealthReport
    tiers: List[TierOutcome] = field(default_factory=list)
    spec_met: bool = False

    @property
    def total_pulses(self) -> float:
        return sum(tier.pulses for tier in self.tiers)

    @property
    def pairs_recovered(self) -> int:
        return self.initial.deviating_pairs - self.final.deviating_pairs

    def summary(self) -> str:
        lines = [
            f"Remediation ladder: {self.initial.deviating_pairs} → "
            f"{self.final.deviating_pairs} deviating pairs "
            f"({'spec met' if self.spec_met else 'spec NOT met'}, "
            f"{self.total_pulses:.0f} pulses)"
        ]
        for tier in self.tiers:
            lines.append(
                f"  {tier.tier}: {tier.actions} actions, "
                f"{tier.deviating_before} → {tier.deviating_after} deviating"
            )
        return "\n".join(lines)


def _compensation_targets(
    code: int,
    g_plus: float,
    g_minus: float,
    stuck_plus: bool,
    stuck_minus: bool,
    device,
) -> Optional[Tuple[float, float, bool, bool]]:
    """Target conductances realizing ``code`` given the stuck pattern.

    Returns ``(t_plus, t_minus, write_plus, write_minus)`` or ``None``
    when no in-window target exists (both devices stuck, or the
    compensating conductance would leave the device window).
    """
    step = device.g_step
    if stuck_plus and stuck_minus:
        return None
    if stuck_plus:
        t_plus, t_minus = g_plus, g_plus - code * step
        write_plus, write_minus = False, True
    elif stuck_minus:
        t_minus = g_minus
        t_plus = g_minus + code * step
        write_plus, write_minus = True, False
    else:
        t_plus = device.g_min + max(code, 0) * step
        t_minus = device.g_min + max(-code, 0) * step
        write_plus = write_minus = True
    eps = 1e-15
    for target in (t_plus, t_minus):
        if not (device.g_min - eps <= target <= device.g_max + eps):
            return None
    return t_plus, t_minus, write_plus, write_minus


def repair_tile_closed_loop(
    array: CrossbarArray,
    tile_row: int,
    tile_col: int,
    config: RemediationConfig,
    layer: str = "array",
) -> Tuple[int, int, float]:
    """Program-and-verify every deviating pair of one tile.

    Each attempt draws fresh (but deterministically seeded) pulse noise;
    the best attempt is kept only if it strictly improves on the pair's
    current error, and attempts stop early once within tolerance.  Returns
    ``(pairs_written, pairs_repaired, pulses_spent)``.
    """
    device = array.device
    step = device.g_step
    sigma = device.variation_sigma
    tile = array.tiles[tile_row][tile_col]
    tile.ensure_stuck_masks()
    intended = array.tile_codes(tile_row, tile_col)
    realized = (tile.g_plus - tile.g_minus) / step
    deviation = np.abs(realized - intended)
    pulse_cost = config.programming.expected_pulses(device.levels)

    written = repaired = 0
    pulses = 0.0
    for r, c in np.argwhere(deviation > config.code_tolerance):
        code = int(intended[r, c])
        targets = _compensation_targets(
            code,
            float(tile.g_plus[r, c]),
            float(tile.g_minus[r, c]),
            bool(tile.stuck_plus[r, c]),
            bool(tile.stuck_minus[r, c]),
            device,
        )
        if targets is None:
            continue
        t_plus, t_minus, write_plus, write_minus = targets
        stream = substream(config.seed, layer, (tile_row, tile_col, r, c))
        current_error = float(deviation[r, c])
        best: Optional[Tuple[float, float, float]] = None  # (error, g_plus, g_minus)
        for _ in range(config.max_retries):
            pulses += pulse_cost
            new_plus, new_minus = t_plus, t_minus
            if sigma > 0:
                if write_plus:
                    new_plus = float(
                        np.clip(t_plus * np.exp(stream.normal(0.0, sigma)),
                                device.g_min, device.g_max)
                    )
                if write_minus:
                    new_minus = float(
                        np.clip(t_minus * np.exp(stream.normal(0.0, sigma)),
                                device.g_min, device.g_max)
                    )
            realized_code = (new_plus - new_minus) / step
            if code != 0 and realized_code * code < 0:
                # A sign-flipped write would invite the pair-swap tier to
                # undo it; never accept one.
                continue
            error = abs(realized_code - code)
            if best is None or error < best[0]:
                best = (error, new_plus, new_minus)
            if error <= config.code_tolerance:
                break
        if best is not None and best[0] < current_error - 1e-12:
            tile.g_plus[r, c] = best[1]
            tile.g_minus[r, c] = best[2]
            written += 1
            if best[0] <= config.code_tolerance:
                repaired += 1
    return written, repaired, pulses


def _network_layers(system) -> List[Tuple[str, CrossbarArray]]:
    from repro.snc.export import _spiking_layers

    network = getattr(system, "network", system)
    if isinstance(network, CrossbarArray):
        return [("array", network)]
    layers = [(name, module.array) for name, _kind, module in _spiking_layers(network)]
    if not layers:
        raise ValueError("system has no mapped crossbar layers; map it first")
    return layers


def _reprogram_tier(system, config: RemediationConfig) -> Tuple[int, float]:
    actions = 0
    pulses = 0.0
    for name, array in _network_layers(system):
        for tile_row in range(len(array.tiles)):
            for tile_col in range(len(array.tiles[tile_row])):
                written, _repaired, spent = repair_tile_closed_loop(
                    array, tile_row, tile_col, config, layer=name
                )
                actions += written
                pulses += spent
    return actions, pulses


def _swap_tier(system, config: RemediationConfig) -> Tuple[int, float]:
    actions = 0
    for _name, array in _network_layers(system):
        actions += rescue_by_pair_swap(array)
    return actions, 0.0


def _tile_deviation_counts(array: CrossbarArray, tolerance: float) -> List[Tuple[int, int, int]]:
    """Per-tile deviating-pair counts, as ``(count, tile_row, tile_col)``."""
    counts = []
    for tile_row, row_tiles in enumerate(array.tiles):
        for tile_col, tile in enumerate(row_tiles):
            realized = (tile.g_plus - tile.g_minus) / array.device.g_step
            deviating = int(
                (np.abs(realized - array.tile_codes(tile_row, tile_col)) > tolerance).sum()
            )
            counts.append((deviating, tile_row, tile_col))
    return counts


def _spare_tier(system, config: RemediationConfig) -> Tuple[int, float]:
    actions = 0
    pulses = 0.0
    pulse_cost = None
    for name, array in _network_layers(system):
        if array.spare_tiles_remaining < 1:
            continue
        if pulse_cost is None:
            pulse_cost = config.programming.expected_pulses(array.device.levels)
        # Worst tiles first; each logical tile owns at most one spare.
        for deviating, tile_row, tile_col in sorted(
            _tile_deviation_counts(array, config.code_tolerance), reverse=True
        ):
            if deviating == 0:
                break
            if array.spare_tiles_remaining < 1:
                break
            if (tile_row, tile_col) in array.remapped_tiles:
                continue
            rng = substream(config.seed, f"{name}:spare", (tile_row, tile_col))
            fresh = array.replace_tile(tile_row, tile_col, rng=rng)
            pulses += pulse_cost * fresh.g_plus.size * 2
            _written, _repaired, spent = repair_tile_closed_loop(
                array, tile_row, tile_col, config, layer=name
            )
            pulses += spent
            actions += 1
    return actions, pulses


def run_remediation_ladder(
    system,
    config: Optional[RemediationConfig] = None,
) -> RemediationReport:
    """Climb the repair ladder until the health spec is met.

    ``system`` is a :class:`~repro.snc.system.SpikingSystem` or any mapped
    network.  Probes with :func:`~repro.snc.diagnosis.diagnose` before,
    between, and after tiers; stops as soon as the network-wide deviating
    fraction reaches ``config.target_deviating_fraction``.
    """
    config = config or RemediationConfig()

    def probe() -> HealthReport:
        return diagnose(
            system, code_tolerance=config.code_tolerance,
            n_functional=0, seed=config.seed,
        )

    def spec_met(report: HealthReport) -> bool:
        fraction = report.deviating_pairs / max(report.total_pairs, 1)
        return fraction <= config.target_deviating_fraction

    initial = probe()
    report = RemediationReport(initial=initial, final=initial, spec_met=spec_met(initial))
    if report.spec_met:
        return report

    ladder = [("reprogram", _reprogram_tier)]
    if config.use_pair_swap:
        ladder.append(("pair_swap", _swap_tier))
        ladder.append(("reprogram_post_swap", _reprogram_tier))
    if config.use_spares:
        ladder.append(("spare_remap", _spare_tier))

    current = initial
    for tier_name, tier_fn in ladder:
        actions, pulses = tier_fn(system, config)
        after = probe()
        report.tiers.append(
            TierOutcome(
                tier=tier_name,
                actions=actions,
                deviating_before=current.deviating_pairs,
                deviating_after=after.deviating_pairs,
                pulses=pulses,
            )
        )
        current = after
        if spec_met(current):
            break
    report.final = current
    report.spec_met = spec_met(current)
    return report
