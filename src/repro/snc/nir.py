"""NIR-style hardware-neutral graph interchange for deployed models.

The programming image (:mod:`repro.snc.export`) serializes *crossbar
contents* — it presumes the target is this repo's SNC.  Following the
Neuromorphic Intermediate Representation (NIR) deployment flow (see
PAPERS.md: SpiNNaker2 + NIR), this module serializes the *model graph*
itself in a documented, versioned, vocabulary-restricted format that any
backend can consume:

- **Nodes** carry a ``kind`` from the fixed vocabulary below plus plain
  scalar ``attrs``; weights/buffers live as named float64 arrays.
- **Containers** (``sequence``, ``residual``, ``graph``) reference their
  children by id; a flat **edge list** over computation nodes (with
  synthetic ``#sum`` junctions for residual joins) gives graph consumers
  the dataflow without understanding the hierarchy.
- Models built from custom classes (LeNet, AlexNet, ResNet blocks) are
  *lowered* to the vocabulary on export — the importer never needs the
  original classes, which is what makes the format hardware-neutral.

Round-trip guarantee: ``import_nir(export_nir(m))`` rebuilds a module
whose forward pass is the same op sequence over byte-identical float64
parameters, so logits agree **bit for bit** with the original (the
differential conformance suite locks this for every registered model).

The on-disk form is a single ``.npz``: arrays under ``<node_id>:<name>``
and the JSON header under ``__nir__`` (uint8 bytes), the same idiom as
the programming image.  See ``docs/streaming.md`` for the format table.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.deployment import _PrependInput
from repro.core.modules import InputQuantizer, QuantizedActivation
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Residual,
    Sequential,
)

NIR_FORMAT = "repro-nir"
NIR_FORMAT_VERSION = 1

#: Every node kind the format may contain.  ``sum`` only appears in the
#: edge list (residual join junctions), never as a hierarchy node.
NODE_KINDS: Tuple[str, ...] = (
    "graph", "sequence", "residual", "sum",
    "conv2d", "affine", "batch_norm2d",
    "relu", "identity", "flatten", "dropout",
    "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "input_quantizer", "quantized_activation",
)


@dataclass
class NIRNode:
    """One node of the interchange graph."""

    id: str
    kind: str
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {"id": self.id, "kind": self.kind, "attrs": dict(self.attrs),
                "children": list(self.children)}


@dataclass
class NIRGraph:
    """A complete interchange graph plus its parameter arrays."""

    root: str
    nodes: Dict[str, NIRNode]
    edges: List[Tuple[str, str]]
    arrays: Dict[str, np.ndarray]
    model: Optional[str] = None
    version: int = NIR_FORMAT_VERSION

    def node(self, node_id: str) -> NIRNode:
        return self.nodes[node_id]

    def meta(self) -> dict:
        """The JSON header (everything except the arrays)."""
        return {
            "format": NIR_FORMAT,
            "version": self.version,
            "model": self.model,
            "root": self.root,
            "nodes": [n.to_dict() for n in self.nodes.values()],
            "edges": [list(e) for e in self.edges],
        }

    def save(self, path: str) -> None:
        """Write the graph as one ``.npz`` archive."""
        payload = dict(self.arrays)
        payload["__nir__"] = np.frombuffer(
            json.dumps(self.meta()).encode(), dtype=np.uint8
        )
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez_compressed(path, **payload)


# ---------------------------------------------------------------------------
# Lowering: custom model classes → the structural vocabulary
# ---------------------------------------------------------------------------

#: class name → lowering function producing a vocabulary-only module that
#: *shares* the original parameter tensors (no copies; export reads data).
LOWERERS: Dict[str, Callable[[Module], Module]] = {}


def register_lowerer(class_name: str) -> Callable:
    """Decorator: register a lowering for a custom module class."""
    def decorate(fn: Callable[[Module], Module]) -> Callable[[Module], Module]:
        LOWERERS[class_name] = fn
        return fn
    return decorate


def _chain(module: Module) -> Sequential:
    """Lower a declaration-order linear-chain model to a ``Sequential``.

    Valid only for classes whose ``forward`` applies the registered
    children in declaration order (LeNet, AlexNetCifar are written that
    way on purpose).
    """
    return Sequential(*[lower_module(child) for child in module._modules.values()])


LOWERERS["LeNet"] = _chain
LOWERERS["AlexNetCifar"] = _chain


@register_lowerer("BasicBlock")
def _lower_basic_block(block: Module) -> Module:
    # forward: relu2(bn2(conv2(relu1(bn1(conv1 x)))) + shortcut(x))
    body = Sequential(
        lower_module(block.conv1), lower_module(block.bn1),
        lower_module(block.relu1), lower_module(block.conv2),
        lower_module(block.bn2),
    )
    residual = Residual(body, lower_module(block.shortcut))
    residual.activation = lower_module(block.relu2)
    return residual


@register_lowerer("ResNetCifar")
def _lower_resnet(model: Module) -> Module:
    return Sequential(
        lower_module(model.stem), lower_module(model.stem_bn),
        lower_module(model.stem_relu),
        *[_lower_basic_block(b) for b in model.stages],
        lower_module(model.pool), lower_module(model.fc),
    )


_VOCABULARY_CLASSES = (
    _PrependInput, Sequential, Residual, Conv2d, Linear, BatchNorm2d,
    ReLU, Identity, Flatten, Dropout, MaxPool2d, AvgPool2d,
    GlobalAvgPool2d, InputQuantizer, QuantizedActivation,
)


def lower_module(module: Module) -> Module:
    """Return a vocabulary-only equivalent of ``module`` (may be itself)."""
    if type(module).__name__ in LOWERERS and not isinstance(module, _VOCABULARY_CLASSES):
        return LOWERERS[type(module).__name__](module)
    if isinstance(module, _PrependInput):
        lowered = lower_module(module.network)
        return module if lowered is module.network \
            else _PrependInput(module.input_quantizer, lowered)
    if isinstance(module, Sequential):
        lowered = [lower_module(child) for child in module.layers]
        return module if all(a is b for a, b in zip(lowered, module.layers)) \
            else Sequential(*lowered)
    if isinstance(module, Residual):
        body = lower_module(module.body)
        shortcut = lower_module(module.shortcut)
        activation = lower_module(module.activation)
        if body is module.body and shortcut is module.shortcut \
                and activation is module.activation:
            return module
        rebuilt = Residual(body, shortcut)
        rebuilt.activation = activation
        return rebuilt
    if isinstance(module, QuantizedActivation):
        inner = lower_module(module.inner)
        return module if inner is module.inner else QuantizedActivation(
            inner, module.bits, gain=module.gain, enabled=module.enabled
        )
    if isinstance(module, _VOCABULARY_CLASSES):
        return module
    raise ValueError(
        f"{type(module).__name__} is not NIR-exportable: not in the vocabulary "
        f"and no lowerer is registered (register_lowerer)"
    )


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def _serialize(module: Module, node_id: str, nodes: Dict[str, NIRNode],
               arrays: Dict[str, np.ndarray]) -> None:
    if isinstance(module, _PrependInput):
        node = NIRNode(node_id, "graph",
                       children=[f"{node_id}/input", f"{node_id}/network"])
        nodes[node_id] = node
        _serialize(module.input_quantizer, f"{node_id}/input", nodes, arrays)
        _serialize(module.network, f"{node_id}/network", nodes, arrays)
    elif isinstance(module, Sequential):
        children = [f"{node_id}/{i}" for i in range(len(module.layers))]
        nodes[node_id] = NIRNode(node_id, "sequence", children=children)
        for child_id, child in zip(children, module.layers):
            _serialize(child, child_id, nodes, arrays)
    elif isinstance(module, Residual):
        children = [f"{node_id}/body", f"{node_id}/shortcut", f"{node_id}/activation"]
        nodes[node_id] = NIRNode(node_id, "residual", children=children)
        _serialize(module.body, children[0], nodes, arrays)
        _serialize(module.shortcut, children[1], nodes, arrays)
        _serialize(module.activation, children[2], nodes, arrays)
    elif isinstance(module, QuantizedActivation):
        nodes[node_id] = NIRNode(
            node_id, "quantized_activation",
            attrs={"bits": module.bits, "gain": module.gain,
                   "enabled": module.enabled},
            children=[f"{node_id}/inner"],
        )
        _serialize(module.inner, f"{node_id}/inner", nodes, arrays)
    elif isinstance(module, Conv2d):
        nodes[node_id] = NIRNode(node_id, "conv2d", attrs={
            "in_channels": module.in_channels,
            "out_channels": module.out_channels,
            "kernel_size": module.kernel_size,
            "stride": module.stride,
            "padding": module.padding,
            "bias": module.bias is not None,
        })
        arrays[f"{node_id}:weight"] = module.weight.data
        if module.bias is not None:
            arrays[f"{node_id}:bias"] = module.bias.data
    elif isinstance(module, Linear):
        nodes[node_id] = NIRNode(node_id, "affine", attrs={
            "in_features": module.in_features,
            "out_features": module.out_features,
            "bias": module.bias is not None,
        })
        arrays[f"{node_id}:weight"] = module.weight.data
        if module.bias is not None:
            arrays[f"{node_id}:bias"] = module.bias.data
    elif isinstance(module, BatchNorm2d):
        nodes[node_id] = NIRNode(node_id, "batch_norm2d", attrs={
            "num_features": module.num_features,
            "momentum": module.momentum,
            "eps": module.eps,
        })
        arrays[f"{node_id}:gamma"] = module.gamma.data
        arrays[f"{node_id}:beta"] = module.beta.data
        arrays[f"{node_id}:running_mean"] = module.running_mean
        arrays[f"{node_id}:running_var"] = module.running_var
    elif isinstance(module, InputQuantizer):
        nodes[node_id] = NIRNode(node_id, "input_quantizer", attrs={
            "bits": module.bits, "offset": module.offset, "gain": module.gain,
        })
    elif isinstance(module, MaxPool2d):
        nodes[node_id] = NIRNode(node_id, "max_pool2d", attrs={
            "kernel_size": module.kernel_size, "stride": module.stride,
        })
    elif isinstance(module, AvgPool2d):
        nodes[node_id] = NIRNode(node_id, "avg_pool2d", attrs={
            "kernel_size": module.kernel_size, "stride": module.stride,
        })
    elif isinstance(module, Dropout):
        nodes[node_id] = NIRNode(node_id, "dropout", attrs={"p": module.p})
    elif isinstance(module, ReLU):
        nodes[node_id] = NIRNode(node_id, "relu")
    elif isinstance(module, Flatten):
        nodes[node_id] = NIRNode(node_id, "flatten")
    elif isinstance(module, GlobalAvgPool2d):
        nodes[node_id] = NIRNode(node_id, "global_avg_pool2d")
    elif isinstance(module, Identity):
        nodes[node_id] = NIRNode(node_id, "identity")
    else:  # unreachable after lower_module, kept as a guard
        raise ValueError(f"cannot serialize {type(module).__name__}")


def _wire(node_id: str, nodes: Dict[str, NIRNode],
          edges: List[Tuple[str, str]]) -> Tuple[List[str], List[str]]:
    """Dataflow endpoints of a subtree: (entry ids, exit ids)."""
    node = nodes[node_id]
    if node.kind in ("graph", "sequence"):
        entries: List[str] = []
        exits: List[str] = []
        for child_id in node.children:
            child_in, child_out = _wire(child_id, nodes, edges)
            if not child_in:
                continue
            if not entries:
                entries = child_in
            else:
                edges.extend((src, dst) for src in exits for dst in child_in)
            exits = child_out
        return entries, exits
    if node.kind == "residual":
        body_id, shortcut_id, activation_id = node.children
        body_in, body_out = _wire(body_id, nodes, edges)
        short_in, short_out = _wire(shortcut_id, nodes, edges)
        act_in, act_out = _wire(activation_id, nodes, edges)
        junction = f"{node_id}#sum"
        edges.extend((src, junction) for src in body_out + short_out)
        edges.extend((junction, dst) for dst in act_in)
        return body_in + short_in, act_out
    # quantized_activation is a wiring leaf (one IFC+counter stage); its
    # inner activation is hierarchy detail, not a separate dataflow node.
    return [node_id], [node_id]


def to_nir(module: Module, model: Optional[str] = None) -> NIRGraph:
    """Lower ``module`` to the vocabulary and build its interchange graph."""
    lowered = lower_module(module)
    nodes: Dict[str, NIRNode] = {}
    arrays: Dict[str, np.ndarray] = {}
    _serialize(lowered, "model", nodes, arrays)
    edges: List[Tuple[str, str]] = []
    _wire("model", nodes, edges)
    return NIRGraph(root="model", nodes=nodes, edges=edges,
                    arrays=arrays, model=model)


def export_nir(module: Module, path: str, model: Optional[str] = None) -> NIRGraph:
    """Export a model to an ``.npz`` interchange archive; returns the graph."""
    graph = to_nir(module, model=model)
    graph.save(path)
    return graph


# ---------------------------------------------------------------------------
# Import
# ---------------------------------------------------------------------------

def load_nir(path: str) -> NIRGraph:
    """Read an interchange archive back into an :class:`NIRGraph`.

    Raises ``ValueError`` on a wrong format tag or version — forward
    compatibility is explicit, never silent.
    """
    with np.load(path) as archive:
        if "__nir__" not in archive:
            raise ValueError(f"{path!r} is not a NIR archive (missing __nir__ header)")
        meta = json.loads(archive["__nir__"].tobytes().decode())
        if meta.get("format") != NIR_FORMAT:
            raise ValueError(
                f"unsupported NIR format tag {meta.get('format')!r} "
                f"(expected {NIR_FORMAT!r})"
            )
        if meta.get("version") != NIR_FORMAT_VERSION:
            raise ValueError(
                f"unsupported NIR format version {meta.get('version')!r} "
                f"(this importer reads version {NIR_FORMAT_VERSION})"
            )
        arrays = {key: archive[key] for key in archive.files if key != "__nir__"}
    nodes = {
        n["id"]: NIRNode(n["id"], n["kind"], dict(n["attrs"]), list(n["children"]))
        for n in meta["nodes"]
    }
    return NIRGraph(
        root=meta["root"], nodes=nodes,
        edges=[tuple(e) for e in meta["edges"]],
        arrays=arrays, model=meta.get("model"), version=meta["version"],
    )


def _array(graph: NIRGraph, node_id: str, name: str) -> np.ndarray:
    key = f"{node_id}:{name}"
    if key not in graph.arrays:
        raise ValueError(f"NIR archive missing array {key!r}")
    return graph.arrays[key]


def _build(graph: NIRGraph, node_id: str) -> Module:
    node = graph.node(node_id)
    kind, attrs = node.kind, node.attrs
    if kind == "graph":
        input_id, network_id = node.children
        return _PrependInput(_build(graph, input_id), _build(graph, network_id))
    if kind == "sequence":
        return Sequential(*[_build(graph, child) for child in node.children])
    if kind == "residual":
        body_id, shortcut_id, activation_id = node.children
        residual = Residual(_build(graph, body_id), _build(graph, shortcut_id))
        residual.activation = _build(graph, activation_id)
        return residual
    if kind == "quantized_activation":
        return QuantizedActivation(
            _build(graph, node.children[0]), int(attrs["bits"]),
            gain=float(attrs["gain"]), enabled=bool(attrs["enabled"]),
        )
    if kind == "conv2d":
        conv = Conv2d(
            int(attrs["in_channels"]), int(attrs["out_channels"]),
            int(attrs["kernel_size"]), stride=int(attrs["stride"]),
            padding=int(attrs["padding"]), bias=bool(attrs["bias"]),
            rng=np.random.default_rng(0),
        )
        conv.weight.data = np.array(_array(graph, node_id, "weight"))
        if conv.bias is not None:
            conv.bias.data = np.array(_array(graph, node_id, "bias"))
        return conv
    if kind == "affine":
        linear = Linear(
            int(attrs["in_features"]), int(attrs["out_features"]),
            bias=bool(attrs["bias"]), rng=np.random.default_rng(0),
        )
        linear.weight.data = np.array(_array(graph, node_id, "weight"))
        if linear.bias is not None:
            linear.bias.data = np.array(_array(graph, node_id, "bias"))
        return linear
    if kind == "batch_norm2d":
        bn = BatchNorm2d(int(attrs["num_features"]),
                         momentum=float(attrs["momentum"]), eps=float(attrs["eps"]))
        bn.gamma.data = np.array(_array(graph, node_id, "gamma"))
        bn.beta.data = np.array(_array(graph, node_id, "beta"))
        bn.running_mean[...] = _array(graph, node_id, "running_mean")
        bn.running_var[...] = _array(graph, node_id, "running_var")
        return bn
    if kind == "input_quantizer":
        return InputQuantizer(int(attrs["bits"]), offset=float(attrs["offset"]),
                              gain=float(attrs["gain"]))
    if kind == "max_pool2d":
        return MaxPool2d(int(attrs["kernel_size"]), stride=int(attrs["stride"]))
    if kind == "avg_pool2d":
        return AvgPool2d(int(attrs["kernel_size"]), stride=int(attrs["stride"]))
    if kind == "dropout":
        return Dropout(p=float(attrs["p"]), rng=np.random.default_rng(0))
    if kind == "relu":
        return ReLU()
    if kind == "flatten":
        return Flatten()
    if kind == "global_avg_pool2d":
        return GlobalAvgPool2d()
    if kind == "identity":
        return Identity()
    raise ValueError(f"unknown NIR node kind {kind!r} at {node_id!r}")


def from_nir(graph: NIRGraph) -> Module:
    """Rebuild an executable module tree from an interchange graph.

    The result is in eval mode (interchange carries deployed models).
    """
    module = _build(graph, graph.root)
    module.eval()
    return module


def import_nir(path: str) -> Module:
    """Load an archive and rebuild the model: ``from_nir(load_nir(path))``."""
    return from_nir(load_nir(path))


# ---------------------------------------------------------------------------
# Validation (QN8xx)
# ---------------------------------------------------------------------------

_EXPECTED_ARRAYS: Dict[str, Tuple[str, ...]] = {
    "conv2d": ("weight",),
    "affine": ("weight",),
    "batch_norm2d": ("gamma", "beta", "running_mean", "running_var"),
}


def validate_nir(graph: NIRGraph):
    """Static validation of an interchange graph → ``CheckReport``.

    Proves the properties the importer depends on (QN802–QN804) and the
    paper's uniformity property over quantized activations (QN805).
    QN801 (format/version) is enforced at :func:`load_nir` time; it is
    re-checked here for graphs built by other producers.
    """
    from repro.check.diagnostics import CheckReport

    report = CheckReport(f"nir:{graph.model or graph.root}")
    if graph.version != NIR_FORMAT_VERSION:
        report.add(
            "QN801", "error", "",
            f"format version {graph.version} unsupported "
            f"(importer reads {NIR_FORMAT_VERSION})",
            hint="re-export with this toolchain or migrate the archive",
        )
    if graph.root not in graph.nodes:
        report.add("QN804", "error", "",
                   f"root node {graph.root!r} missing from the node table",
                   hint="the exporter must emit the root node first")
        return report
    known_ids = set(graph.nodes)
    junctions = {f"{n.id}#sum" for n in graph.nodes.values() if n.kind == "residual"}
    for node in graph.nodes.values():
        if node.kind not in NODE_KINDS:
            report.add("QN802", "error", node.id,
                       f"node kind {node.kind!r} is not in the vocabulary",
                       hint=f"supported kinds: {', '.join(NODE_KINDS)}")
        for child in node.children:
            if child not in known_ids:
                report.add("QN804", "error", node.id,
                           f"child reference {child!r} is dangling",
                           hint="every child id must appear in the node table")
        for name in _EXPECTED_ARRAYS.get(node.kind, ()):
            if f"{node.id}:{name}" not in graph.arrays:
                report.add("QN803", "error", node.id,
                           f"required array {name!r} is missing",
                           hint="re-export; the archive is incomplete")
        if node.kind == "conv2d" and f"{node.id}:weight" in graph.arrays:
            expected = (int(node.attrs["out_channels"]), int(node.attrs["in_channels"]),
                        int(node.attrs["kernel_size"]), int(node.attrs["kernel_size"]))
            actual = tuple(graph.arrays[f"{node.id}:weight"].shape)
            if actual != expected:
                report.add("QN803", "error", node.id,
                           f"weight shape {actual} contradicts attrs {expected}",
                           hint="attrs and arrays must describe the same layer")
        if node.kind == "affine" and f"{node.id}:weight" in graph.arrays:
            expected = (int(node.attrs["out_features"]), int(node.attrs["in_features"]))
            actual = tuple(graph.arrays[f"{node.id}:weight"].shape)
            if actual != expected:
                report.add("QN803", "error", node.id,
                           f"weight shape {actual} contradicts attrs {expected}",
                           hint="attrs and arrays must describe the same layer")
    for src, dst in graph.edges:
        for endpoint in (src, dst):
            if endpoint not in known_ids and endpoint not in junctions:
                report.add("QN804", "error", "",
                           f"edge endpoint {endpoint!r} is dangling",
                           hint="edges may only reference nodes or #sum junctions")
    quantizers = [n for n in graph.nodes.values() if n.kind == "quantized_activation"]
    if quantizers:
        bits = {int(n.attrs["bits"]) for n in quantizers}
        gains = {float(n.attrs["gain"]) for n in quantizers}
        if len(bits) > 1 or len(gains) > 1:
            report.add(
                "QN805", "warning", "",
                f"quantized activations are not uniform: bits={sorted(bits)}, "
                f"gains={sorted(gains)}",
                hint="the paper's design uses one M and one gain network-wide",
            )
    return report


__all__ = [
    "NIR_FORMAT",
    "NIR_FORMAT_VERSION",
    "NODE_KINDS",
    "NIRGraph",
    "NIRNode",
    "export_nir",
    "from_nir",
    "import_nir",
    "load_nir",
    "lower_module",
    "register_lowerer",
    "to_nir",
    "validate_nir",
]
