"""Temporal (event-driven) inference over a deployed spiking system.

The frame path runs one inference per image; this module runs one
inference per *sliding event window*: an event stream is binned into
M-bit count frames (:func:`repro.datasets.event_stream.
sliding_window_counts` — per-pixel counts saturating at ``2^M − 1``,
exactly the spike window a WL driver can replay), each frame is pushed
through the system's *compiled* engine, and the per-window logits are
aggregated into a stream-level decision:

- **rate** decision: sum logits over every window, argmax at the end —
  the temporal analogue of the paper's rate code (evidence accumulates
  linearly over the whole recording).
- **latency** decision: accumulate window by window and stop as soon as
  the leading class's margin over the runner-up clears a threshold —
  time-to-first-decision becomes the latency metric, mirroring
  latency-coded readout where the first sufficiently confident spike
  wins.

The engine is compiled once and reused for all windows (and all
streams), so the temporal path inherits the runtime layer's bit-exact
equivalence guarantees; determinism of the whole path follows from the
dataset's seed-substream generation plus the engine's fixed float64
policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.datasets.event_stream import (
    EventStream,
    counts_to_frames,
    num_windows,
    sliding_window_counts,
)
from repro.models.specs import NetworkSpec
from repro.snc.cost import PAPER_SPEED_PROFILES, SpeedProfile, generic_speed_profile
from repro.snc.pipeline_sim import simulate_pipeline, window_cycles


@dataclass(frozen=True)
class TemporalConfig:
    """How an event stream becomes a sequence of engine inferences.

    ``signal_bits`` bounds the per-window event counts (M-bit binning);
    it should match the deployed system's input precision so a saturated
    pixel maps to the quantizer's full scale.  ``decision`` picks the
    readout: ``"rate"`` integrates every window, ``"latency"`` stops at
    the first window whose accumulated top-1 margin reaches
    ``latency_margin``.

    ``batch_windows`` fixes the engine batch grouping: windows run in
    consecutive groups of this size.  Grouping is *part of the numeric
    contract* — BLAS reduction order depends on batch shape, so logits
    are bit-reproducible only across runs that group identically.  The
    streaming server uses the same grouping, which is what makes
    session-served logits bit-equal to a direct replay.
    """

    window_us: int = 25_000
    stride_us: int = 12_500
    signal_bits: int = 4
    polarity: str = "merge"
    decision: str = "rate"
    latency_margin: float = 1.0
    batch_windows: int = 4

    def __post_init__(self) -> None:
        if self.window_us < 1 or self.stride_us < 1:
            raise ValueError("window_us and stride_us must be positive")
        if self.stride_us > self.window_us:
            raise ValueError(
                f"stride_us ({self.stride_us}) must not exceed window_us "
                f"({self.window_us}) — gaps would drop events"
            )
        if self.signal_bits < 1:
            raise ValueError(f"signal_bits must be >= 1, got {self.signal_bits}")
        if self.decision not in ("rate", "latency"):
            raise ValueError(f"decision must be 'rate' or 'latency', got {self.decision!r}")
        if self.latency_margin <= 0:
            raise ValueError("latency_margin must be positive")
        if self.batch_windows < 1:
            raise ValueError(f"batch_windows must be >= 1, got {self.batch_windows}")


@dataclass
class TemporalResult:
    """Outcome of one stream's temporal inference.

    ``per_window_logits`` covers every window whose engine group ran —
    in latency mode that may extend past ``decision_window`` to the end
    of the deciding group (the decision itself only integrates windows
    ``0..decision_window``).
    """

    per_window_logits: np.ndarray   # (windows_run, classes) float64
    prediction: int
    label: int
    decision_window: int            # index of the window that decided
    total_windows: int              # windows available in the stream

    @property
    def correct(self) -> bool:
        return self.prediction == self.label

    @property
    def windows_used(self) -> int:
        """Windows consumed before the decision fired (≥ 1)."""
        return self.decision_window + 1


def stream_to_frames(stream: EventStream, config: TemporalConfig) -> np.ndarray:
    """Bin a stream into engine-ready input frames.

    Returns float64 ``(num_windows, C, H, W)`` normalized to [0, 1] so a
    saturated count hits the input quantizer's full scale — the exact
    tensor layout the frame path trains and calibrates on.
    """
    counts = sliding_window_counts(
        stream, config.window_us, config.stride_us, config.signal_bits,
        polarity=config.polarity,
    )
    return counts_to_frames(counts, config.signal_bits)


def window_groups(total: int, batch_windows: int) -> List[slice]:
    """The engine-batch grouping for ``total`` windows: consecutive
    slices of ``batch_windows`` (last one shorter).  Shared verbatim by
    direct replay and the streaming server's session micro-batching.
    """
    if total < 1:
        raise ValueError("total must be >= 1")
    return [
        slice(start, min(start + batch_windows, total))
        for start in range(0, total, batch_windows)
    ]


def replay_frames(engine, frames: np.ndarray, batch_windows: int) -> np.ndarray:
    """Run windows through the engine in the canonical grouping.

    Returns per-window logits ``(len(frames), classes)`` float64.  Two
    replays with the same ``batch_windows`` are bit-identical; replays
    with different groupings agree only to float64 rounding.
    """
    parts = [
        np.asarray(engine.run(frames[group]), dtype=np.float64)
        for group in window_groups(len(frames), batch_windows)
    ]
    return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)


def infer_stream(system, stream: EventStream,
                 config: Optional[TemporalConfig] = None) -> TemporalResult:
    """Run one event stream through a :class:`~repro.snc.system.
    SpikingSystem`'s compiled engine, window group by window group.

    Rate mode replays every window and sums logits.  Latency mode scans
    the accumulated logits group by group and stops (skipping the
    remaining groups) once the top-1 margin clears
    ``config.latency_margin`` — with ``batch_windows=1`` that is true
    per-window early exit.
    """
    config = config or TemporalConfig()
    frames = stream_to_frames(stream, config)
    engine = system.engine()
    total = len(frames)
    rows: List[np.ndarray] = []
    accumulated = np.zeros(0, dtype=np.float64)
    decision_window: Optional[int] = None
    for group in window_groups(total, config.batch_windows):
        out = np.asarray(engine.run(frames[group]), dtype=np.float64)
        rows.append(out)
        for offset in range(out.shape[0]):
            accumulated = out[offset] if accumulated.size == 0 \
                else accumulated + out[offset]
            if config.decision == "latency" and decision_window is None:
                top2 = np.sort(accumulated)[-2:]
                if top2[1] - top2[0] >= config.latency_margin:
                    decision_window = group.start + offset
        if decision_window is not None:
            break
    logits = rows[0] if len(rows) == 1 else np.concatenate(rows, axis=0)
    if decision_window is None:
        decision_window = total - 1
    prediction = int(logits[: decision_window + 1].sum(axis=0).argmax())
    return TemporalResult(
        per_window_logits=logits,
        prediction=prediction,
        label=stream.label,
        decision_window=decision_window,
        total_windows=total,
    )


def stream_accuracy(system, streams: Sequence[EventStream],
                    config: Optional[TemporalConfig] = None) -> float:
    """Top-1 accuracy of temporal inference over a set of event streams."""
    if not streams:
        raise ValueError("streams must be non-empty")
    results = [infer_stream(system, s, config) for s in streams]
    return sum(r.correct for r in results) / len(results)


# ---------------------------------------------------------------------------
# Streaming timing model (pipeline_sim over windows)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamTiming:
    """Simulated hardware timing for a windowed stream (cycle-accurate)."""

    first_window_us: float     # latency until window 0's logits are ready
    total_us: float            # until the last window completes
    windows_per_second: float  # steady-state completion rate

    @property
    def keeps_up_with(self) -> float:
        """Max real-time stride (µs) this pipeline sustains without lag."""
        return 1e6 / self.windows_per_second


def stream_timing(
    spec: NetworkSpec,
    config: TemporalConfig,
    total_windows: int,
    profile: Optional[SpeedProfile] = None,
) -> StreamTiming:
    """Cycle-level timing of serving ``total_windows`` through the layer
    pipeline (flow-shop recurrence of :func:`~repro.snc.pipeline_sim.
    simulate_pipeline`), converted to wall time via the speed profile.

    Each window is one pipelined inference whose stage occupancy is the
    M-bit spike window, so steady state completes one window per
    bottleneck window — the paper's Fig. 1a throughput argument applied
    to the event path.
    """
    if total_windows < 2:
        raise ValueError("need at least 2 windows to measure streaming rate")
    profile = profile or PAPER_SPEED_PROFILES.get(
        spec.name, generic_speed_profile(spec.num_layers)
    )
    cycles = window_cycles(config.signal_bits, profile.overhead_cycles) + 1
    stats = simulate_pipeline([cycles] * spec.num_layers, num_inferences=total_windows)
    us_per_cycle = 1.0 / profile.f_mhz
    return StreamTiming(
        first_window_us=stats.first_latency * us_per_cycle,
        total_us=stats.total_cycles * us_per_cycle,
        windows_per_second=1e6 * profile.f_mhz * stats.throughput,
    )


__all__ = [
    "StreamTiming",
    "TemporalConfig",
    "TemporalResult",
    "infer_stream",
    "replay_frames",
    "stream_accuracy",
    "stream_timing",
    "stream_to_frames",
    "window_groups",
]
