"""Behavioural memristor device model.

The paper's deployment platform stores each synaptic weight as the
conductance of a memristor in a MIM stack (Sec. 2.2), with the resistance
window taken from [12]: **50 kΩ – 1 MΩ**, i.e. conductances between
1 µS and 20 µS.  An N-bit weight maps to one of ``2^(N−1) + 1`` magnitude
levels on each device of a differential pair (see
:mod:`repro.snc.crossbar`).

The model covers what the system simulation needs:

- the discrete programmable conductance levels for a given bit width,
- programming (level index → conductance) with optional device-to-device
  variation (lognormal, as is standard for filamentary devices),
- read current ``i = g · v``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

# Resistance window from C. Liu et al., DAC 2015 [12].
R_ON_OHMS = 50_000.0     # lowest programmable resistance (highest conductance)
R_OFF_OHMS = 1_000_000.0  # highest programmable resistance (lowest conductance)


@dataclass(frozen=True)
class MemristorModel:
    """Device-level parameters of one memristor technology.

    Attributes
    ----------
    r_on, r_off:
        Resistance window in ohms.
    levels:
        Number of programmable conductance levels (including the lowest).
    variation_sigma:
        Lognormal σ of device-to-device conductance variation (0 = ideal).
    """

    r_on: float = R_ON_OHMS
    r_off: float = R_OFF_OHMS
    levels: int = 16
    variation_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.r_on <= 0 or self.r_off <= 0:
            raise ValueError("resistances must be positive")
        if self.r_on >= self.r_off:
            raise ValueError("r_on must be below r_off")
        if self.levels < 2:
            raise ValueError("need at least 2 conductance levels")
        if self.variation_sigma < 0:
            raise ValueError("variation_sigma must be >= 0")

    @property
    def g_min(self) -> float:
        """Lowest programmable conductance (siemens)."""
        return 1.0 / self.r_off

    @property
    def g_max(self) -> float:
        """Highest programmable conductance (siemens)."""
        return 1.0 / self.r_on

    @property
    def g_step(self) -> float:
        """Conductance spacing between adjacent levels."""
        return (self.g_max - self.g_min) / (self.levels - 1)

    def level_conductances(self) -> np.ndarray:
        """All programmable conductances, linearly spaced in G (not R).

        Linear-in-conductance spacing is what makes a crossbar column sum
        represent a linear dot product — the paper's Weight Clustering
        produces exactly such a linear codebook.
        """
        return self.g_min + self.g_step * np.arange(self.levels)

    def program(
        self, level: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Program level indices (integers in [0, levels)) to conductances.

        With ``variation_sigma > 0`` each device lands at
        ``g · exp(N(0, σ²))`` — the write is imprecise, as real filamentary
        programming is.
        """
        level = np.asarray(level)
        if np.any((level < 0) | (level >= self.levels)):
            raise ValueError(f"levels must be in [0, {self.levels}), got range "
                             f"[{level.min()}, {level.max()}]")
        conductance = self.g_min + self.g_step * level.astype(np.float64)
        if self.variation_sigma > 0:
            rng = rng or np.random.default_rng()
            conductance = conductance * np.exp(
                rng.normal(0.0, self.variation_sigma, size=conductance.shape)
            )
        return conductance

    @staticmethod
    def read_current(conductance: np.ndarray, voltage: np.ndarray) -> np.ndarray:
        """Ohm's law: element-wise ``i = g·v``."""
        return conductance * voltage


def levels_for_bits(bits: int) -> int:
    """Magnitude levels one device of a differential pair must hold.

    An N-bit fixed-point weight has codes ``{0, ±1, …, ±2^(N−1)}``; each
    device of the pair stores a magnitude in ``{0, 1, …, 2^(N−1)}`` —
    ``2^(N−1) + 1`` levels.  At N = 4 that is 9 levels, comfortably inside
    the 64 levels (6 bits) HP Labs reported for real devices [16] while
    avoiding their "heavy programming cost".
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2 ** (bits - 1) + 1


def model_for_bits(bits: int, variation_sigma: float = 0.0) -> MemristorModel:
    """A memristor model with exactly the levels needed for N-bit weights."""
    return MemristorModel(levels=levels_for_bits(bits), variation_sigma=variation_sigma)
