"""Monte-Carlo die studies: yield under programming variation.

A fab lot of memristor chips programmed from the same image all differ —
each die samples its own programming noise.  The question a deployment
team asks is *yield*: what fraction of dies meets the accuracy spec?

:func:`estimate_yield` programs ``n_dies`` virtual chips from one
programming image (via :mod:`repro.snc.export`), evaluates each on a test
set, and reports the pass fraction plus the accuracy distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core.surgery import clone_module
from repro.nn.data import Dataset
from repro.snc.export import install_chip, program_chip
from repro.snc.system import SpikingSystem


@dataclass
class YieldReport:
    """Outcome of a Monte-Carlo yield study."""

    variation_sigma: float
    threshold: float             # accuracy spec (fraction in [0, 1])
    accuracies: List[float] = field(default_factory=list)

    @property
    def n_dies(self) -> int:
        return len(self.accuracies)

    @property
    def yield_fraction(self) -> float:
        if not self.accuracies:
            return 0.0
        passes = sum(1 for a in self.accuracies if a >= self.threshold)
        return passes / self.n_dies

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    @property
    def worst_die(self) -> float:
        return float(min(self.accuracies)) if self.accuracies else 0.0

    def summary(self) -> str:
        return (
            f"σ={self.variation_sigma:.0%}: yield {self.yield_fraction:.0%} "
            f"({self.n_dies} dies, spec ≥{self.threshold:.0%}), "
            f"mean {self.mean_accuracy:.1%}, worst {self.worst_die:.1%}"
        )


def estimate_yield(
    system: SpikingSystem,
    test_set: Dataset,
    variation_sigma: float,
    threshold: float,
    n_dies: int = 10,
    seed: int = 0,
    eval_samples: int = 200,
) -> YieldReport:
    """Program ``n_dies`` virtual chips and measure the pass fraction.

    ``system`` must be an (ideal) deployed :class:`SpikingSystem`; its
    programming image is taken from the mapped arrays in place.  Each die
    gets an independent noise draw; evaluation uses the first
    ``eval_samples`` test samples to bound runtime.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    if n_dies < 1:
        raise ValueError("n_dies must be >= 1")

    # Extract the image directly from the deployed network's arrays.
    from repro.snc.export import LayerImage, _spiking_layers

    image = {}
    for name, kind, module in _spiking_layers(system.network):
        image[name] = LayerImage(
            name=name,
            kind=kind,
            codes=module.array.weight_codes,
            scale=module.array.scale,
            bits=module.array.bits,
            bias_rows=module._n_bias_rows,
        )
    if not image:
        raise ValueError("system has no mapped crossbar layers")

    subset = test_set.subset(min(eval_samples, len(test_set)))
    report = YieldReport(variation_sigma=variation_sigma, threshold=threshold)
    for die in range(n_dies):
        chip = program_chip(
            image,
            crossbar_size=system.config.crossbar_size,
            variation_sigma=variation_sigma,
            seed=seed + die,
        )
        die_network = clone_module(system.network)
        install_chip(die_network, chip)
        correct = 0
        predictions = _predict(die_network, subset.images)
        correct = int((predictions == subset.labels).sum())
        report.accuracies.append(correct / len(subset))
    return report


def _predict(network, images: np.ndarray) -> np.ndarray:
    from repro.nn.tensor import Tensor, no_grad

    with no_grad():
        return network(Tensor(images)).data.argmax(axis=1)


def yield_vs_variation(
    system: SpikingSystem,
    test_set: Dataset,
    sigmas,
    threshold: float,
    n_dies: int = 8,
    seed: int = 0,
    eval_samples: int = 200,
) -> List[YieldReport]:
    """Sweep variation levels; returns one :class:`YieldReport` each."""
    return [
        estimate_yield(
            system, test_set, sigma, threshold,
            n_dies=n_dies, seed=seed, eval_samples=eval_samples,
        )
        for sigma in sigmas
    ]
