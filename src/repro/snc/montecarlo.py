"""Monte-Carlo die studies: yield under programming variation.

A fab lot of memristor chips programmed from the same image all differ —
each die samples its own programming noise.  The question a deployment
team asks is *yield*: what fraction of dies meets the accuracy spec?

:func:`estimate_yield` programs ``n_dies`` virtual chips from one
programming image (via :mod:`repro.snc.export`), evaluates each on a test
set, and reports the pass fraction plus the accuracy distribution.

Die evaluation runs through :func:`repro.flow.run_map`: a die whose
programming, installation, or evaluation raises does not abort the study —
it is routed to a :class:`~repro.flow.Failsink` with its *seed* in the
record (``seed + die_index``), so the exact failing die can be replayed
offline, and the yield is computed over the dies that completed (failed
dies are counted in :attr:`YieldReport.failed_dies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.surgery import clone_module
from repro.flow.failsink import Failsink
from repro.flow.runner import run_map
from repro.nn.data import Dataset
from repro.snc.export import install_chip, program_chip
from repro.snc.system import SpikingSystem


@dataclass
class YieldReport:
    """Outcome of a Monte-Carlo yield study."""

    variation_sigma: float
    threshold: float             # accuracy spec (fraction in [0, 1])
    accuracies: List[float] = field(default_factory=list)
    failed_dies: int = 0         # dies routed to the failsink, not evaluated

    @property
    def n_dies(self) -> int:
        return len(self.accuracies)

    @property
    def yield_fraction(self) -> float:
        if not self.accuracies:
            return 0.0
        passes = sum(1 for a in self.accuracies if a >= self.threshold)
        return passes / self.n_dies

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    @property
    def worst_die(self) -> float:
        return float(min(self.accuracies)) if self.accuracies else 0.0

    def summary(self) -> str:
        failed = f", {self.failed_dies} die(s) failed" if self.failed_dies else ""
        return (
            f"σ={self.variation_sigma:.0%}: yield {self.yield_fraction:.0%} "
            f"({self.n_dies} dies, spec ≥{self.threshold:.0%}{failed}), "
            f"mean {self.mean_accuracy:.1%}, worst {self.worst_die:.1%}"
        )


def estimate_yield(
    system: SpikingSystem,
    test_set: Dataset,
    variation_sigma: float,
    threshold: float,
    n_dies: int = 10,
    seed: int = 0,
    eval_samples: int = 200,
    failsink: Optional[Failsink] = None,
    on_error: str = "failsink",
) -> YieldReport:
    """Program ``n_dies`` virtual chips and measure the pass fraction.

    ``system`` must be an (ideal) deployed :class:`SpikingSystem`; its
    programming image is taken from the mapped arrays in place.  Each die
    gets an independent noise draw; evaluation uses the first
    ``eval_samples`` test samples to bound runtime.

    A die that raises is recorded in ``failsink`` (created on demand)
    with seed ``seed + die`` and skipped — the study completes over the
    remaining dies.  Pass ``on_error="raise"`` for the strict historical
    behaviour (first die failure aborts the estimate).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ValueError("threshold must be in [0, 1]")
    if n_dies < 1:
        raise ValueError("n_dies must be >= 1")

    image = programming_image(system)
    subset = test_set.subset(min(eval_samples, len(test_set)))
    report = YieldReport(variation_sigma=variation_sigma, threshold=threshold)
    output = run_map(
        lambda die: die_accuracy(system, image, subset, variation_sigma, seed + die),
        range(n_dies),
        step="estimate_yield",
        failsink=failsink,
        on_error=on_error,
        item_seed=lambda index, die: seed + die,
    )
    report.accuracies.extend(output.results)
    report.failed_dies = len(output.failed_indices)
    return report


def programming_image(system: SpikingSystem) -> dict:
    """The programming image of a deployed system's mapped arrays."""
    from repro.snc.export import LayerImage, _spiking_layers

    image = {}
    for name, kind, module in _spiking_layers(system.network):
        image[name] = LayerImage(
            name=name,
            kind=kind,
            codes=module.array.weight_codes,
            scale=module.array.scale,
            bits=module.array.bits,
            bias_rows=module._n_bias_rows,
        )
    if not image:
        raise ValueError("system has no mapped crossbar layers")
    return image


def die_accuracy(
    system: SpikingSystem,
    image: dict,
    subset: Dataset,
    variation_sigma: float,
    die_seed: int,
) -> float:
    """Program one virtual die from ``image`` and measure its accuracy.

    The unit of work of a yield study: deterministic given ``die_seed``,
    which is exactly what a failsink record carries to replay a bad die.
    """
    chip = program_chip(
        image,
        crossbar_size=system.config.crossbar_size,
        variation_sigma=variation_sigma,
        seed=die_seed,
    )
    die_network = clone_module(system.network)
    install_chip(die_network, chip)
    predictions = _predict(die_network, subset.images)
    correct = int((predictions == subset.labels).sum())
    return correct / len(subset)


def _predict(network, images: np.ndarray) -> np.ndarray:
    from repro.nn.tensor import Tensor, no_grad

    with no_grad():
        return network(Tensor(images)).data.argmax(axis=1)


def yield_vs_variation(
    system: SpikingSystem,
    test_set: Dataset,
    sigmas,
    threshold: float,
    n_dies: int = 8,
    seed: int = 0,
    eval_samples: int = 200,
) -> List[YieldReport]:
    """Sweep variation levels; returns one :class:`YieldReport` each."""
    return [
        estimate_yield(
            system, test_set, sigma, threshold,
            n_dies=n_dies, seed=seed, eval_samples=eval_samples,
        )
        for sigma in sigmas
    ]
