"""Memristor stuck-at-fault injection and a differential-pair rescue.

Reference [16] of the paper ("Rescuing memristor-based neuromorphic design
with high defects", DAC 2017) motivates why fabricated crossbars never
match the ideal model: a fraction of devices are stuck at their lowest
(SA0) or highest (SA1) conductance and cannot be programmed.

This module provides

- :func:`inject_stuck_faults` — flip a random fraction of devices in a
  deployed :class:`~repro.snc.crossbar.CrossbarArray` to stuck values, and
- :func:`rescue_by_pair_swap` — a retraining-free rescue exploiting the
  differential pair: a weight is realized as ``g⁺ − g⁻``, so if the fault
  lands on the device that was supposed to carry the magnitude, swapping
  which device carries it (and negating nothing — the pair is symmetric)
  can sometimes restore the intended difference.  The swap is applied per
  device pair whenever it reduces the realized-weight error.

Together with :class:`~repro.snc.memristor.MemristorModel`'s programming
variation this covers the defect regime the paper's hardware references
study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.snc.crossbar import CrossbarArray
from repro.snc.seeding import resolve_rng


@dataclass
class FaultReport:
    """What fault injection did to one crossbar array."""

    total_devices: int
    stuck_sa0: int
    stuck_sa1: int
    rescued: int = 0

    @property
    def fault_rate(self) -> float:
        return (self.stuck_sa0 + self.stuck_sa1) / max(self.total_devices, 1)


def inject_stuck_faults(
    array: CrossbarArray,
    rate: float,
    sa1_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> FaultReport:
    """Force a random ``rate`` fraction of devices to stuck conductances.

    SA0 devices read ``g_min`` (filament never formed), SA1 devices read
    ``g_max`` (short).  Both polarities hit the g⁺ and g⁻ planes of every
    tile uniformly.  Mutates the array in place and records which devices
    are stuck in the tiles' stuck masks, so later reprogramming attempts
    (:mod:`repro.snc.remediation`) know those cells cannot be rewritten.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if not 0.0 <= sa1_fraction <= 1.0:
        raise ValueError(f"sa1_fraction must be in [0, 1], got {sa1_fraction}")
    rng = resolve_rng(seed, rng)
    device = array.device
    report = FaultReport(total_devices=0, stuck_sa0=0, stuck_sa1=0)
    for row_tiles in array.tiles:
        for tile in row_tiles:
            tile.ensure_stuck_masks()
            for plane, stuck_mask in (
                (tile.g_plus, tile.stuck_plus),
                (tile.g_minus, tile.stuck_minus),
            ):
                report.total_devices += plane.size
                faulty = rng.random(plane.shape) < rate
                stuck_high = faulty & (rng.random(plane.shape) < sa1_fraction)
                stuck_low = faulty & ~stuck_high
                plane[stuck_low] = device.g_min
                plane[stuck_high] = device.g_max
                stuck_mask |= faulty
                report.stuck_sa0 += int(stuck_low.sum())
                report.stuck_sa1 += int(stuck_high.sum())
    return report


def realized_weight_error(array: CrossbarArray) -> float:
    """Mean |realized − intended| weight error, in weight units.

    The realized weight of a pair is ``(g⁺ − g⁻)/g_step`` code units times
    ``scale / 2^N``.
    """
    step = array.device.g_step
    unit = array.scale / float(2 ** array.bits)
    total = 0.0
    count = 0
    for tile_row_index, row_tiles in enumerate(array.tiles):
        row_start = tile_row_index * array.size
        for tile_col_index, tile in enumerate(row_tiles):
            col_start = tile_col_index * array.size
            rows, cols = tile.shape
            intended = array.weight_codes[
                row_start : row_start + rows, col_start : col_start + cols
            ]
            realized = (tile.g_plus - tile.g_minus) / step
            total += float(np.abs(realized - intended).sum()) * unit
            count += intended.size
    return total / max(count, 1)


def inject_faults_into_network(
    network,
    rate: float,
    sa1_fraction: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> FaultReport:
    """Inject stuck faults into every crossbar array of a mapped network.

    ``network`` is a module tree containing
    :class:`~repro.snc.mapping.SpikingConv2d` /
    :class:`~repro.snc.mapping.SpikingLinear` layers (e.g. the ``network``
    of a :class:`~repro.snc.system.SpikingSystem`).  Returns the aggregate
    fault report.
    """
    rng = resolve_rng(seed, rng)
    total = FaultReport(total_devices=0, stuck_sa0=0, stuck_sa1=0)
    for array in _network_arrays(network):
        report = inject_stuck_faults(array, rate, sa1_fraction, rng)
        total.total_devices += report.total_devices
        total.stuck_sa0 += report.stuck_sa0
        total.stuck_sa1 += report.stuck_sa1
    if total.total_devices == 0:
        raise ValueError("network contains no crossbar arrays; map it first")
    return total


def rescue_network(network) -> int:
    """Apply :func:`rescue_by_pair_swap` to every crossbar of a network."""
    swapped = 0
    for array in _network_arrays(network):
        swapped += rescue_by_pair_swap(array)
    return swapped


def _network_arrays(network):
    """Yield every CrossbarArray owned by a mapped network's layers."""
    for module in network.modules():
        array = getattr(module, "array", None)
        if isinstance(array, CrossbarArray):
            yield array


def rescue_by_pair_swap(array: CrossbarArray) -> int:
    """Swap g⁺/g⁻ roles per pair where that reduces realized-weight error.

    A differential pair realizes ``w ∝ g⁺ − g⁻``.  If faults corrupted the
    pair, the swapped orientation realizes ``−(g⁺ − g⁻)``; with the free
    choice of which physical device plays which role at programming time,
    the controller can pick the orientation closer to the intended code.
    Returns the number of pairs swapped.  Mutates the array in place.
    """
    step = array.device.g_step
    swapped = 0
    for tile_row_index, row_tiles in enumerate(array.tiles):
        row_start = tile_row_index * array.size
        for tile_col_index, tile in enumerate(row_tiles):
            col_start = tile_col_index * array.size
            rows, cols = tile.shape
            intended = array.weight_codes[
                row_start : row_start + rows, col_start : col_start + cols
            ]
            realized = (tile.g_plus - tile.g_minus) / step
            keep_error = np.abs(realized - intended)
            swap_error = np.abs(-realized - intended)
            do_swap = swap_error < keep_error
            if np.any(do_swap):
                plus = tile.g_plus[do_swap]
                tile.g_plus[do_swap] = tile.g_minus[do_swap]
                tile.g_minus[do_swap] = plus
                if tile.stuck_plus is not None and tile.stuck_minus is not None:
                    stuck = tile.stuck_plus[do_swap]
                    tile.stuck_plus[do_swap] = tile.stuck_minus[do_swap]
                    tile.stuck_minus[do_swap] = stuck
                swapped += int(do_swap.sum())
    return swapped
