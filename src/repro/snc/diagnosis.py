"""Online fault diagnosis: test-vector health probes for deployed systems.

A fabricated crossbar cannot be trusted to match the programming image —
devices drift, stick, and vary die-to-die.  Because spike-domain signals
are plain integers, the chip admits an *exact* built-in self test: drive
known spike patterns through each mapped crossbar and compare the counter
outputs against the bit-exact quantized software model.

Two probe patterns are used per array:

- **row probes** — one-hot wordline activations read each row of realized
  codes ``(g⁺ − g⁻)/g_step`` directly off the bitlines, localizing every
  deviating device pair;
- **functional probes** — random in-range spike-count vectors exercise the
  full analog accumulation path and measure end-to-end code error.

Deviations classify by magnitude: a pair off by at least one full code is
a *hard* fault (stuck-at candidate — it will flip the integer the counter
reports), smaller deviations are *drift* (programming variation).  Results
aggregate into a :class:`HealthReport` with per-crossbar pass/fail and
worst-layer attribution, which drives the repair ladder in
:mod:`repro.snc.remediation` and the serving guard in
:mod:`repro.runtime.guard`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.snc.crossbar import CrossbarArray
from repro.snc.seeding import resolve_rng

#: A pair deviating by less than this (in code units) is considered healthy:
#: counters quantize to integers, so sub-quarter-code drift never flips an
#: output on its own.
DEFAULT_CODE_TOLERANCE = 0.25

#: Deviation at or above one full code means the counter output is wrong.
HARD_FAULT_THRESHOLD = 1.0


@dataclass
class CrossbarHealth:
    """Probe outcome for one mapped layer's crossbar array."""

    layer: str
    total_pairs: int
    deviating_pairs: int
    estimated_stuck: int
    estimated_drift: int
    deviating_columns: int
    max_code_error: float
    functional_max_error: float
    failing_tiles: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.deviating_pairs == 0

    @property
    def deviating_fraction(self) -> float:
        return self.deviating_pairs / max(self.total_pairs, 1)


@dataclass
class HealthReport:
    """Structured outcome of a full-system health probe."""

    code_tolerance: float
    layers: List[CrossbarHealth] = field(default_factory=list)
    equivalence_ok: Optional[bool] = None  # end-to-end check, if images given

    @property
    def healthy(self) -> bool:
        layers_ok = all(layer.passed for layer in self.layers)
        return layers_ok and self.equivalence_ok is not False

    @property
    def total_pairs(self) -> int:
        return sum(layer.total_pairs for layer in self.layers)

    @property
    def deviating_pairs(self) -> int:
        return sum(layer.deviating_pairs for layer in self.layers)

    @property
    def estimated_stuck(self) -> int:
        return sum(layer.estimated_stuck for layer in self.layers)

    @property
    def estimated_drift(self) -> int:
        return sum(layer.estimated_drift for layer in self.layers)

    @property
    def worst_layer(self) -> Optional[str]:
        """The layer with the highest fraction of deviating pairs."""
        failing = [layer for layer in self.layers if layer.deviating_pairs]
        if not failing:
            return None
        return max(failing, key=lambda h: h.deviating_fraction).layer

    def summary(self) -> str:
        verdict = "HEALTHY" if self.healthy else "FAULTY"
        lines = [
            f"Health probe: {verdict} "
            f"({self.deviating_pairs}/{self.total_pairs} pairs deviating, "
            f"tol={self.code_tolerance} codes)"
        ]
        for layer in self.layers:
            status = "ok" if layer.passed else "FAIL"
            lines.append(
                f"  {layer.layer}: {status} — {layer.deviating_pairs} deviating "
                f"({layer.estimated_stuck} stuck-like, {layer.estimated_drift} drift), "
                f"{layer.deviating_columns} columns, "
                f"max |Δcode| {layer.max_code_error:.3f}, "
                f"{len(layer.failing_tiles)} failing tiles"
            )
        if self.worst_layer is not None:
            lines.append(f"  worst layer: {self.worst_layer}")
        if self.equivalence_ok is not None:
            lines.append(
                "  end-to-end equivalence vs software twin: "
                + ("ok" if self.equivalence_ok else "FAIL")
            )
        return "\n".join(lines)


def probe_array(
    array: CrossbarArray,
    layer: str = "array",
    code_tolerance: float = DEFAULT_CODE_TOLERANCE,
    n_functional: int = 4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> CrossbarHealth:
    """Probe one crossbar array with row and functional test vectors.

    Row probes (one-hot wordlines) read back the realized code of every
    differential pair and are compared against the intended integer codes
    — the bit-exact software reference for this array.  Functional probes
    are ``n_functional`` random non-negative spike-count vectors checked
    against :meth:`CrossbarArray.multiply_codes`.
    """
    if code_tolerance <= 0:
        raise ValueError(f"code_tolerance must be positive, got {code_tolerance}")
    rng = resolve_rng(seed, rng)

    deviation = np.abs(array.realized_codes() - array.weight_codes)
    deviating = deviation > code_tolerance
    hard = deviation >= HARD_FAULT_THRESHOLD
    drift = deviating & ~hard

    failing_tiles: List[Tuple[int, int]] = []
    for tile_row_index, row_tiles in enumerate(array.tiles):
        row_start = tile_row_index * array.size
        for tile_col_index, tile in enumerate(row_tiles):
            col_start = tile_col_index * array.size
            rows, cols = tile.shape
            if np.any(deviating[row_start : row_start + rows, col_start : col_start + cols]):
                failing_tiles.append((tile_row_index, tile_col_index))

    functional_max_error = 0.0
    if n_functional > 0:
        spikes = rng.integers(0, 16, size=(n_functional, array.rows)).astype(np.float64)
        exact = array.multiply_codes(spikes)
        analog = array.multiply_analog(spikes)
        functional_max_error = float(np.abs(analog - exact).max())

    return CrossbarHealth(
        layer=layer,
        total_pairs=int(deviation.size),
        deviating_pairs=int(deviating.sum()),
        estimated_stuck=int(hard.sum()),
        estimated_drift=int(drift.sum()),
        deviating_columns=int(np.any(deviating, axis=0).sum()),
        max_code_error=float(deviation.max()) if deviation.size else 0.0,
        functional_max_error=functional_max_error,
        failing_tiles=failing_tiles,
    )


def diagnose(
    system,
    images: Optional[np.ndarray] = None,
    code_tolerance: float = DEFAULT_CODE_TOLERANCE,
    n_functional: int = 4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> HealthReport:
    """Run the health probe over every mapped crossbar of a system.

    ``system`` is a :class:`~repro.snc.system.SpikingSystem` (or anything
    with a mapped ``network`` attribute, or a bare
    :class:`~repro.snc.crossbar.CrossbarArray`).  When ``images`` is
    given, an end-to-end equivalence check against the quantized software
    twin is included (requires ``system.software_reference``).
    """
    from repro.snc.export import _spiking_layers

    rng = resolve_rng(seed, rng)
    network = getattr(system, "network", system)
    report = HealthReport(code_tolerance=code_tolerance)
    if isinstance(network, CrossbarArray):
        report.layers.append(
            probe_array(
                network,
                code_tolerance=code_tolerance,
                n_functional=n_functional,
                rng=rng,
            )
        )
        return report
    for name, _kind, module in _spiking_layers(network):
        report.layers.append(
            probe_array(
                module.array,
                layer=name,
                code_tolerance=code_tolerance,
                n_functional=n_functional,
                rng=rng,
            )
        )
    if not report.layers:
        raise ValueError("system has no mapped crossbar layers; map it first")
    if images is not None and hasattr(system, "verify_equivalence"):
        report.equivalence_ok = bool(system.verify_equivalence(images))
    return report
