"""Crossbar IR-drop (wire resistance) analysis.

The analog MVM in :mod:`repro.snc.crossbar` assumes ideal wires.  Real
word/bit lines have per-segment resistance, so current flowing through a
line drops voltage along it: cells far from the drivers see less than the
applied voltage and contribute less current than intended.  The error
grows with array size and with cell conductance — this is the physical
reason crossbars are tiled at modest sizes like the paper's 32×32 rather
than mapped as one giant array.

This module solves the full resistive network exactly by nodal analysis
(sparse linear system, scipy) for one crossbar plane:

- node ``R(j,k)`` — the wordline node at row j, column k,
- node ``C(j,k)`` — the bitline node at row j, column k,
- wordline segments ``R(j,k)−R(j,k+1)`` with conductance ``1/r_wire``,
- bitline segments ``C(j,k)−C(j+1,k)`` with conductance ``1/r_wire``,
- the memristor ``R(j,k)−C(j,k)`` with conductance ``g[j,k]``,
- drivers hold ``R(j,0)`` at the input voltages (ideal source),
- sense amplifiers hold ``C(t−1,k)`` at virtual ground.

Output: the current into each column's sense node, compared against the
ideal ``v @ g`` to give a relative error metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# Typical 130 nm metal segment resistance between adjacent cells.
DEFAULT_WIRE_RESISTANCE_OHMS = 2.5


@dataclass(frozen=True)
class IRDropResult:
    """Outcome of one IR-drop simulation."""

    ideal_currents: np.ndarray     # (cols,) amperes
    actual_currents: np.ndarray    # (cols,) amperes

    @property
    def relative_error(self) -> float:
        """‖actual − ideal‖₁ / ‖ideal‖₁ (0 = ideal wires)."""
        denom = float(np.abs(self.ideal_currents).sum())
        if denom == 0.0:
            return 0.0
        return float(np.abs(self.actual_currents - self.ideal_currents).sum()) / denom

    @property
    def worst_column_error(self) -> float:
        """Largest per-column relative deviation."""
        scale = np.abs(self.ideal_currents).max()
        if scale == 0.0:
            return 0.0
        return float(np.abs(self.actual_currents - self.ideal_currents).max() / scale)


def solve_crossbar_currents(
    conductances: np.ndarray,
    input_voltages: np.ndarray,
    wire_resistance: float = DEFAULT_WIRE_RESISTANCE_OHMS,
) -> IRDropResult:
    """Exact nodal analysis of one crossbar plane with resistive wires.

    Parameters
    ----------
    conductances:
        ``(rows, cols)`` cell conductances in siemens.
    input_voltages:
        ``(rows,)`` driver voltages in volts.
    wire_resistance:
        Per-segment wire resistance in ohms (0 → ideal, returns exactly
        the ideal currents).
    """
    from scipy.sparse import lil_matrix
    from scipy.sparse.linalg import spsolve

    conductances = np.asarray(conductances, dtype=np.float64)
    input_voltages = np.asarray(input_voltages, dtype=np.float64)
    rows, cols = conductances.shape
    if input_voltages.shape != (rows,):
        raise ValueError(
            f"need {rows} input voltages, got shape {input_voltages.shape}"
        )
    if wire_resistance < 0:
        raise ValueError("wire_resistance must be >= 0")

    ideal = input_voltages @ conductances

    if wire_resistance == 0.0:
        return IRDropResult(ideal_currents=ideal, actual_currents=ideal.copy())

    g_wire = 1.0 / wire_resistance
    n = rows * cols  # per plane

    def r_index(j: int, k: int) -> int:
        return j * cols + k

    def c_index(j: int, k: int) -> int:
        return n + j * cols + k

    total = 2 * n
    matrix = lil_matrix((total, total))
    rhs = np.zeros(total)

    def stamp(a: int, b: int, g: float) -> None:
        matrix[a, a] += g
        matrix[b, b] += g
        matrix[a, b] -= g
        matrix[b, a] -= g

    # Memristors and wire segments.
    for j in range(rows):
        for k in range(cols):
            stamp(r_index(j, k), c_index(j, k), conductances[j, k])
            if k + 1 < cols:
                stamp(r_index(j, k), r_index(j, k + 1), g_wire)
            if j + 1 < rows:
                stamp(c_index(j, k), c_index(j + 1, k), g_wire)

    # Boundary conditions: drivers at R(j,0), virtual ground at C(rows−1,k).
    big = 1e12  # stiff source conductance (numerically pins the node)
    for j in range(rows):
        node = r_index(j, 0)
        matrix[node, node] += big
        rhs[node] += big * input_voltages[j]
    sense_nodes = [c_index(rows - 1, k) for k in range(cols)]
    for node in sense_nodes:
        matrix[node, node] += big  # held at 0 V

    solution = spsolve(matrix.tocsr(), rhs)

    # Column output current = current into each sense node through its
    # pinned source = big · (0 − v_node) … read instead from the bitline:
    # sum of segment + memristor currents arriving at the sense node.
    actual = np.zeros(cols)
    for k in range(cols):
        node_v = solution[c_index(rows - 1, k)]
        # memristor current into the sense row's bitline node
        current = conductances[rows - 1, k] * (
            solution[r_index(rows - 1, k)] - node_v
        )
        # segment current from the neighbouring bitline node above
        if rows > 1:
            current += g_wire * (solution[c_index(rows - 2, k)] - node_v)
        actual[k] = current
    return IRDropResult(ideal_currents=ideal, actual_currents=actual)


def ir_drop_error_vs_size(
    sizes,
    conductance_level: float = 1e-5,
    wire_resistance: float = DEFAULT_WIRE_RESISTANCE_OHMS,
    fill: float = 1.0,
    seed: int = 0,
):
    """Relative IR-drop error of a worst-case-ish crossbar at each size.

    Every cell at ``conductance_level`` (``fill`` fraction on, rest at
    one-tenth) and all inputs high — the maximal-current corner where IR
    drop is worst.  Returns ``[(size, relative_error), …]``.
    """
    rng = np.random.default_rng(seed)
    results = []
    for size in sizes:
        g = np.full((size, size), conductance_level)
        if fill < 1.0:
            off = rng.random((size, size)) > fill
            g[off] = conductance_level * 0.1
        v = np.ones(size)
        outcome = solve_crossbar_currents(g, v, wire_resistance)
        results.append((size, outcome.relative_error))
    return results
