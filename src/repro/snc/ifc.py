"""Integrate-and-fire circuits (IFCs) and output counters.

Each crossbar column ends in an IFC (Sec. 4.5): the column current charges
a membrane capacitor; every time the charge crosses the firing threshold
the IFC emits a spike and subtracts the threshold.  A digital counter
accumulates the spikes into the layer's M-bit output.

Design rule for the threshold: one output spike must represent one *unit*
of the next layer's integer signal.  The column current is in weight-code
units per input spike (see :class:`repro.snc.crossbar.CrossbarArray`), so a
post-synaptic value ``y`` (in weight units) corresponds to a total charge
``y · 2^N / scale`` code-units; setting ``threshold = 2^N / scale`` makes
the spike count equal ``⌊y⌋`` — and adding half a threshold of initial
bias charge turns truncation into round-to-nearest, matching the software
quantizer exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.snc.spikes import window_length


@dataclass
class IntegrateAndFire:
    """Vectorized IFC bank: one neuron per crossbar column.

    Parameters
    ----------
    threshold:
        Firing threshold in charge units (column-current · time-slot).
    max_spikes:
        Output window capacity ``2^M − 1``; firing saturates there, which
        realizes the quantizer's clip.
    round_to_nearest:
        Pre-charge membranes with half a threshold so the final count is
        ``round`` rather than ``floor`` of the integrated charge.
    """

    threshold: float
    max_spikes: int
    round_to_nearest: bool = True

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if self.max_spikes < 1:
            raise ValueError("max_spikes must be >= 1")

    def run(self, charge_per_slot: np.ndarray) -> np.ndarray:
        """Step the IFC bank through a window of per-slot charges.

        ``charge_per_slot`` has shape ``(window, *neurons)``.  Returns the
        spike counts per neuron (integers in ``[0, max_spikes]``).
        """
        charge_per_slot = np.asarray(charge_per_slot, dtype=np.float64)
        window = charge_per_slot.shape[0]
        membrane = np.zeros(charge_per_slot.shape[1:])
        if self.round_to_nearest:
            membrane += self.threshold / 2.0
        counts = np.zeros(charge_per_slot.shape[1:], dtype=np.int64)
        for slot in range(window):
            membrane = membrane + charge_per_slot[slot]
            fires = np.floor(membrane / self.threshold).astype(np.int64)
            fires = np.clip(fires, 0, None)
            capacity = self.max_spikes - counts
            fired = np.minimum(fires, capacity)
            counts += fired
            membrane = membrane - fires * self.threshold
        return counts

    def run_total(self, total_charge: np.ndarray) -> np.ndarray:
        """Closed form for the whole window at once.

        Because charge accumulates and thresholds subtract linearly, the
        final count equals ``clip(floor(total/θ + ½), 0, max)`` (with
        rounding pre-charge) regardless of how charge was distributed over
        slots — used as the fast path and as the oracle the stepped
        simulation is tested against.
        """
        total = np.asarray(total_charge, dtype=np.float64) / self.threshold
        if self.round_to_nearest:
            total = total + 0.5
        return np.clip(np.floor(total), 0, self.max_spikes).astype(np.int64)


def ifc_for_layer(signal_bits: int, weight_bits: int, scale: float) -> IntegrateAndFire:
    """Build the IFC bank matching a layer's quantization parameters.

    One unit of integer output must equal one unit of post-synaptic sum in
    *weight* units; the crossbar reports code units (weights × ``2^N / s``),
    hence ``threshold = 2^N / s``.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    return IntegrateAndFire(
        threshold=float(2 ** weight_bits) / scale,
        max_spikes=window_length(signal_bits),
    )
