"""Neuron Convergence — training-side activation regularization (Sec. 3.1).

:class:`NeuronConvergence` wires the Eq. 3 penalty into a training loop:
it taps every inter-layer signal (ReLU output) during the forward pass and
exposes the summed regularization term ``Σ_i λ_i · Rg(O^i)`` of Eq. 2 as a
differentiable tensor to add to the data loss.

Normalization note: Eq. 2 sums ``rg`` over every element of every layer
(``Rg(O^i) = Σ_r Σ_c Σ_d rg(o)``); the paper's ``O^i`` is one sample's
activation map, so we divide the summed penalty by the batch size only —
keeping the per-element gradient at ``λ_i·(1 + α)`` for out-of-range
signals, strong enough to actually contain the distribution.  (Dividing by
the full tensor size instead would scale the gradient by ~1e-5 and turn
the regularizer into a no-op.)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.regularizers import DEFAULT_ALPHA, make_penalty
from repro.core.taps import SignalTap, default_signal_modules
from repro.nn.modules import Module
from repro.nn.tensor import Tensor


class NeuronConvergence:
    """Attach the proposed regularizer (or a Fig. 3 baseline) to a model.

    Parameters
    ----------
    model:
        Network to regularize.
    bits:
        Target signal bit width M (sets the range threshold ``2^(M−1)``).
    strength:
        λ — overall weight of the regularization term (per-element).
    alpha:
        The sparsity slope α of Eq. 3 (paper: 0.1).
    penalty:
        One of ``"proposed"``, ``"l1"``, ``"truncated_l1"``, ``"none"``.
    layer_weights:
        Optional per-layer λ_i multipliers (defaults to all ones).
    selector:
        Which modules emit inter-layer signals (default: all ReLUs).

    Use as a context manager around the training loop so hooks are removed
    afterwards::

        with NeuronConvergence(model, bits=4, strength=1e-3) as reg:
            for batch in loader:
                logits = model(x)                  # tap records signals
                loss = ce(logits, y) + reg.term()  # Eq. 2
                ...
    """

    def __init__(
        self,
        model: Module,
        bits: int,
        strength: float = 1e-3,
        alpha: float = DEFAULT_ALPHA,
        penalty: str = "proposed",
        layer_weights: Optional[Sequence[float]] = None,
        selector: Callable[[Module], List[Tuple[str, Module]]] = default_signal_modules,
    ) -> None:
        if strength < 0:
            raise ValueError(f"strength must be >= 0, got {strength}")
        self.model = model
        self.bits = bits
        self.strength = strength
        self.alpha = alpha
        self.penalty_name = penalty
        self._penalty = make_penalty(penalty, bits, alpha)
        self.tap = SignalTap(model, selector)
        if layer_weights is None:
            self.layer_weights = [1.0] * len(self.tap.targets)
        else:
            if len(layer_weights) != len(self.tap.targets):
                raise ValueError(
                    f"{len(layer_weights)} layer weights for "
                    f"{len(self.tap.targets)} tapped layers"
                )
            self.layer_weights = list(layer_weights)

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "NeuronConvergence":
        self.tap.attach()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tap.detach()

    # -- the Eq. 2 regularization term ---------------------------------------
    def term(self) -> Tensor:
        """Σ_i λ_i · Rg(O^i), averaged over the batch, for the last forward.

        Clears the captured signals, so call exactly once per forward pass.
        """
        signals = self.tap.signals
        if not signals:
            raise RuntimeError(
                "no signals captured — run a forward pass inside the context first"
            )
        total: Optional[Tensor] = None
        for weight, signal in zip(self.layer_weights, signals):
            batch = signal.shape[0] if signal.ndim > 0 else 1
            layer_term = self._penalty(signal) * (weight / batch)
            total = layer_term if total is None else total + layer_term
        self.tap.clear()
        assert total is not None
        return total * self.strength

    # -- diagnostics ----------------------------------------------------------
    def signal_statistics(self) -> List[dict]:
        """Per-layer summary of the last captured forward (before clear)."""
        stats = []
        for name, signal in zip(self.tap.names, self.tap.signals):
            data = signal.data
            stats.append(
                {
                    "layer": name,
                    "max": float(data.max()),
                    "mean": float(data.mean()),
                    "sparsity": float((data == 0).mean()),
                    "fraction_in_range": float((data <= 2 ** (self.bits - 1)).mean()),
                }
            )
        return stats


def fraction_outside_range(signals: np.ndarray, bits: int) -> float:
    """Fraction of signal values above the 2^(M−1) convergence bound."""
    return float((signals > 2 ** (bits - 1)).mean())
