"""Variation-aware training (extension, after the paper's ref. [16] theme).

Memristor programming is imprecise: a deployed weight lands at
``w · exp(N(0, σ²))`` rather than ``w`` (see
:class:`repro.snc.memristor.MemristorModel`).  A network trained on exact
weights can be brittle to that perturbation.  The standard counter-measure
is to *train under the deployment noise*: each forward pass samples a
fresh multiplicative lognormal perturbation of every weight, gradients are
computed through the perturbed forward (the perturbation is a constant
w.r.t. the step), and updates apply to the clean master weights.

The result is a network whose loss surface is flat under multiplicative
weight noise — measurably more robust on the variation-injected hardware
(see ``benchmarks/bench_extension_variation_training.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.metrics import evaluate_accuracy
from repro.core.surgery import weight_bearing_modules
from repro.nn.data import DataLoader, Dataset
from repro.nn.losses import cross_entropy
from repro.nn.modules import Module
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class VariationTrainingConfig:
    """Hyper-parameters for noise-injected training."""

    noise_sigma: float = 0.1   # lognormal σ of the injected weight noise
    epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be >= 0")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


def train_with_variation(
    model: Module,
    train_set: Dataset,
    config: VariationTrainingConfig,
    eval_set: Optional[Dataset] = None,
) -> List[float]:
    """Fine-tune ``model`` in place under multiplicative weight noise.

    Returns the per-epoch training losses.  With ``noise_sigma = 0`` this
    is ordinary training (used as the control arm in tests).
    """
    rng = np.random.default_rng(config.seed)
    loader = DataLoader(train_set, batch_size=config.batch_size,
                        rng=np.random.default_rng(config.seed + 1))
    layers = weight_bearing_modules(model)
    masters: Dict[int, np.ndarray] = {
        id(module): module.weight.data.copy() for _, module in layers
    }
    optimizer = Adam(
        [module.weight for _, module in layers]
        + [module.bias for _, module in layers if module.bias is not None],
        lr=config.lr,
    )

    losses: List[float] = []
    model.train()
    for _ in range(config.epochs):
        epoch_loss = 0.0
        seen = 0
        for images, labels in loader:
            # Perturb: forward/backward run on noisy weights.
            for _, module in layers:
                clean = masters[id(module)]
                if config.noise_sigma > 0:
                    noise = np.exp(
                        rng.normal(0.0, config.noise_sigma, size=clean.shape)
                    )
                    module.weight.data[...] = clean * noise
                else:
                    module.weight.data[...] = clean
            loss = cross_entropy(model(Tensor(images)), labels)
            optimizer.zero_grad()
            loss.backward()
            # Update the clean masters with the noisy-forward gradients.
            for _, module in layers:
                module.weight.data[...] = masters[id(module)]
            optimizer.step()
            for _, module in layers:
                masters[id(module)][...] = module.weight.data
            epoch_loss += loss.item() * len(labels)
            seen += len(labels)
        losses.append(epoch_loss / seen)

    for _, module in layers:
        module.weight.data[...] = masters[id(module)]
    model.eval()
    return losses


def variation_robustness(
    model: Module,
    test_set: Dataset,
    sigmas,
    trials: int = 3,
    seed: int = 0,
) -> List[dict]:
    """Accuracy of ``model`` under sampled weight perturbations.

    A software proxy for deploying on ``trials`` different dies at each
    variation level: perturb → evaluate → restore.
    """
    layers = weight_bearing_modules(model)
    clean = {id(module): module.weight.data.copy() for _, module in layers}
    results = []
    try:
        for sigma in sigmas:
            accuracies = []
            for trial in range(trials):
                rng = np.random.default_rng(seed + trial * 1000 + int(sigma * 1e6))
                for _, module in layers:
                    base = clean[id(module)]
                    if sigma > 0:
                        noise = np.exp(rng.normal(0.0, sigma, size=base.shape))
                        module.weight.data[...] = base * noise
                    else:
                        module.weight.data[...] = base
                accuracies.append(evaluate_accuracy(model, test_set) * 100.0)
            results.append(
                {
                    "sigma": float(sigma),
                    "mean_accuracy": float(np.mean(accuracies)),
                    "std_accuracy": float(np.std(accuracies)),
                }
            )
    finally:
        for _, module in layers:
            module.weight.data[...] = clean[id(module)]
    return results
