"""Quantizers for inter-layer signals and weights.

Three schemes appear in the paper:

1. **Fixed-integer signals** (Sec. 3.1): an M-bit inter-layer signal is a
   spike count, i.e. a plain non-negative integer.  Every layer uses the
   *same* range ``[0, 2^M − 1]`` — this uniformity is the point (dynamic
   ranges would need per-layer spike-window hardware).  Quantization is
   rounding plus saturation; no scale factor exists, because a spike count
   has no exponent.

2. **Fixed-point weights** (Sec. 3.2): an N-bit weight lies on the linear
   grid ``D / 2^N`` with ``D ∈ {0, ±1, …, ±(2^(N−1) − 1), ±2^(N−1)}``
   (Eq. 6), i.e. spacing ``2^-N`` and magnitude at most ``1/2``.  The naive
   ("w/o") quantizer rounds onto this fixed grid; the Weight Clustering
   solver in :mod:`repro.core.weight_clustering` instead *optimizes* the
   grid scale (the paper's Eq. 6 with the ``N ≥ log2(max|D|/max|W|)``
   constraint chooses how the grid covers the weight range).

3. **Dynamic fixed point** (Gysel et al. [23], the paper's baseline): each
   layer gets its own fractional length chosen from its data range —
   accurate at 8 bits but exactly the per-layer nonuniformity the paper
   argues is hostile to spiking hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def signal_levels(bits: int) -> int:
    """Number of representable spike counts for M-bit signals: ``2^M``."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return 2 ** bits


def quantize_signals(values: np.ndarray, bits: int) -> np.ndarray:
    """Quantize non-negative inter-layer signals to M-bit fixed integers.

    ``round`` then saturate to ``[0, 2^M − 1]`` (the spike window can carry
    at most ``2^M − 1`` spikes).  Negative inputs clamp to zero — signals
    are post-ReLU spike rates.

    Rounding is ``floor(x + ½)`` (half always rounds up), matching the IFC
    hardware exactly: an integrate-and-fire neuron pre-charged with half a
    threshold fires ``⌊q/θ + ½⌋`` times — see :mod:`repro.snc.ifc`.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    top = signal_levels(bits) - 1
    return np.clip(np.floor(values + 0.5), 0, top)


def signal_quantization_error(values: np.ndarray, bits: int) -> float:
    """Mean squared error introduced by :func:`quantize_signals`."""
    return float(np.mean((quantize_signals(values, bits) - np.maximum(values, 0)) ** 2))


def weight_grid(bits: int, scale: float = 1.0) -> np.ndarray:
    """The N-bit fixed-point codebook ``scale · k / 2^N`` for integer k.

    ``k`` ranges over ``{-2^(N-1), …, -1, 0, 1, …, 2^(N-1)}`` — the
    symmetric completion of the paper's set (Eq. 6 writes the positive
    endpoint only; symmetry is implied by the ± notation).
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    half = 2 ** (bits - 1)
    ks = np.arange(-half, half + 1)
    return scale * ks / float(2 ** bits)


def quantize_weights_fixed_point(
    weights: np.ndarray, bits: int, scale: float = 1.0
) -> np.ndarray:
    """Round weights onto the fixed-point grid (the "w/o clustering" path).

    With ``scale=1`` this is the paper's literal grid: spacing ``2^-N``,
    saturation at ``±1/2``.  Weight Clustering passes an optimized scale.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    denom = float(2 ** bits)
    half = 2 ** (bits - 1)
    codes = np.clip(np.rint(weights / scale * denom), -half, half)
    return scale * codes / denom


def weight_quantization_error(weights: np.ndarray, bits: int, scale: float = 1.0) -> float:
    """Mean squared error of :func:`quantize_weights_fixed_point`."""
    return float(np.mean((quantize_weights_fixed_point(weights, bits, scale) - weights) ** 2))


@dataclass(frozen=True)
class DynamicFixedPointFormat:
    """A per-tensor dynamic fixed point format (Gysel et al. [23]).

    ``bits`` total width including sign; ``fractional_bits`` chosen so that
    the largest magnitude in the calibration data just fits.
    """

    bits: int
    fractional_bits: int

    @property
    def step(self) -> float:
        return 2.0 ** (-self.fractional_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.bits - 1) - 1) * self.step

    @property
    def min_value(self) -> float:
        return -(2 ** (self.bits - 1)) * self.step


def fit_dynamic_fixed_point(values: np.ndarray, bits: int = 8) -> DynamicFixedPointFormat:
    """Choose the fractional length covering ``max(|values|)``.

    Integer length ``IL = ceil(log2(max|v|)) + 1`` (one bit for sign),
    fractional length ``FL = bits − IL`` — Ristretto's rule.
    """
    if bits < 2:
        raise ValueError(f"bits must be >= 2, got {bits}")
    peak = float(np.max(np.abs(values))) if values.size else 0.0
    if peak <= 0:
        return DynamicFixedPointFormat(bits=bits, fractional_bits=bits - 1)
    integer_length = int(np.ceil(np.log2(peak))) + 1
    fmt = DynamicFixedPointFormat(bits=bits, fractional_bits=bits - integer_length)
    if fmt.max_value < peak:
        # Peaks exactly at a power of two exceed (2^(bits−1)−1)·step; widen
        # by one integer bit so the format genuinely covers the range.
        fmt = DynamicFixedPointFormat(bits=bits, fractional_bits=bits - integer_length - 1)
    return fmt


def quantize_dynamic_fixed_point(
    values: np.ndarray, fmt: DynamicFixedPointFormat
) -> np.ndarray:
    """Round onto the format's grid and saturate at its range."""
    scaled = np.rint(values / fmt.step)
    low = -(2 ** (fmt.bits - 1))
    high = 2 ** (fmt.bits - 1) - 1
    return np.clip(scaled, low, high) * fmt.step


def quantize_dynamic(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Convenience: fit a format on ``values`` then quantize them."""
    return quantize_dynamic_fixed_point(values, fit_dynamic_fixed_point(values, bits))
