"""Straight-through estimators (STE) for quantization inside autograd.

Post-training quantization (what the paper's tables measure) never needs
gradients through the rounding step, but the pipeline also supports an
optional quantization-aware *fine-tuning* stage, which does.  The STE
passes gradients through unchanged wherever the input lies inside the
representable range and blocks them where the quantizer saturates.
"""

from __future__ import annotations

from repro.core import quantizers as Q
from repro.nn.tensor import Tensor


def ste_quantize_signals(x: Tensor, bits: int, gain: float = 1.0) -> Tensor:
    """M-bit fixed-integer signal quantization with straight-through grads.

    ``gain`` is the IFC conversion gain: the spike count is
    ``round(gain · x)`` and the next layer interprets counts at ``1/gain``
    — a single *network-wide* hardware constant (the IFC threshold scale),
    not a per-layer format.  ``gain = 1`` is the paper's literal scheme
    where signal values are spike counts directly.
    """
    if gain <= 0:
        raise ValueError(f"gain must be positive, got {gain}")
    out_data = Q.quantize_signals(x.data * gain, bits) / gain
    top = (Q.signal_levels(bits) - 1) / gain

    def backward(grad) -> None:
        if x.requires_grad:
            mask = (x.data >= 0) & (x.data <= top)
            x._accumulate(grad * mask)

    return Tensor._make(out_data, (x,), backward)


def ste_quantize_weights(w: Tensor, bits: int, scale: float = 1.0) -> Tensor:
    """N-bit fixed-point weight quantization with straight-through grads."""
    out_data = Q.quantize_weights_fixed_point(w.data, bits, scale)
    limit = scale * 0.5  # grid saturates at ±scale·2^(N−1)/2^N

    def backward(grad) -> None:
        if w.requires_grad:
            mask = (w.data >= -limit) & (w.data <= limit)
            w._accumulate(grad * mask)

    return Tensor._make(out_data, (w,), backward)
