"""Weight Clustering — fixed-point weight quantization by clustering (Sec. 3.2).

The paper casts weight quantization as the optimization (Eq. 6)

    D* = argmin_D ‖D/2^N − W‖²,   D ∈ {0, ±1, …, ±2^(N−1)}^|W|

"solved by the k-nearest-neighbours algorithm", subject to
``N ≥ log2(max|D| / max|W|)`` — the constraint that ties the grid to the
weight range.  We implement this as constrained 1-D k-means (Lloyd
iterations) over a *linear* codebook ``c_k = s · k / 2^N``:

- **assignment** step: each weight snaps to its nearest code
  (the k-NN step — trivial for a linear codebook: scaled rounding);
- **update** step: with assignments ``k_j`` fixed, the optimal scale has
  the closed form ``s* = 2^N · Σ k_j w_j / Σ k_j²``.

The codebook stays linear throughout (hardware-friendly: a crossbar plus a
single column-DAC reference realizes any linearly spaced conductance set),
only its scale is learned.  With ``scale=1`` frozen and no iterations this
degenerates to the naive rounding of
:func:`repro.core.quantizers.quantize_weights_fixed_point` — the paper's
"w/o clustering" arm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core import quantizers as Q
from repro.core.surgery import weight_bearing_modules
from repro.nn.modules import Module


@dataclass
class ClusteringResult:
    """Outcome of clustering one weight array.

    Attributes
    ----------
    codes:
        Integer code per weight (the elements of ``D``).
    scale:
        Learned grid scale ``s`` (``quantized = s · codes / 2^N``).
    bits:
        Target bit width N.
    mse:
        Final mean squared quantization error.
    iterations:
        Lloyd iterations actually performed.
    """

    codes: np.ndarray
    scale: float
    bits: int
    mse: float
    iterations: int

    @property
    def quantized(self) -> np.ndarray:
        """The quantized weights ``s · D / 2^N``."""
        return self.scale * self.codes / float(2 ** self.bits)

    @property
    def codebook(self) -> np.ndarray:
        """All representable values at this scale."""
        return Q.weight_grid(self.bits, self.scale)

    @property
    def levels_used(self) -> int:
        """Distinct codes actually present (≤ 2^N + 1)."""
        return int(np.unique(self.codes).size)


def _assign(weights: np.ndarray, bits: int, scale: float) -> np.ndarray:
    """Nearest-neighbour assignment onto the scaled linear grid."""
    denom = float(2 ** bits)
    half = 2 ** (bits - 1)
    return np.clip(np.rint(weights / scale * denom), -half, half)


def _optimal_scale(weights: np.ndarray, codes: np.ndarray, bits: int) -> Optional[float]:
    """Closed-form scale minimizing ‖s·codes/2^N − w‖² for fixed codes."""
    denominator = float(np.sum(codes * codes))
    if denominator == 0.0:
        return None
    numerator = float(np.sum(codes * weights))
    scale = (2 ** bits) * numerator / denominator
    return scale if scale > 0 else None


def _bin_stats(
    flat_sorted: np.ndarray,
    prefix_w: np.ndarray,
    scales: np.ndarray,
    bits: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-start assignment sums ``(Σ kw, Σ k²)`` without materializing codes.

    Nearest-neighbour assignment onto the linear codebook ``s·k/2^N``
    partitions the sorted weights at the midpoints ``s·(k+½)/2^N``, so one
    ``searchsorted`` of the 2^N boundaries yields every bin's count and
    (via the prefix sum) weight mass.  The Lloyd scale update and the
    convergence objective only consume these two reductions, which makes
    each iteration O(levels · log n) instead of a full pass over the
    weights — the win that takes the multi-start solver from ~75 ms to
    ~5 ms on a 50k-weight layer.
    """
    half = 2 ** (bits - 1)
    denom = float(2 ** bits)
    levels = np.arange(-half, half + 1, dtype=np.float64)
    midpoints = (levels[:-1] + 0.5) / denom
    n = flat_sorted.shape[0]
    edges = np.empty((scales.shape[0], levels.shape[0] + 1), dtype=np.intp)
    edges[:, 0] = 0
    edges[:, -1] = n
    cut = scales[:, None] * midpoints[None, :]
    edges[:, 1:-1] = np.searchsorted(flat_sorted, cut.ravel()).reshape(cut.shape)
    counts = np.diff(edges, axis=1).astype(np.float64)
    mass = prefix_w[edges[:, 1:]] - prefix_w[edges[:, :-1]]
    return mass @ levels, counts @ (levels * levels)


def _lloyd_multi(
    flat: np.ndarray,
    bits: int,
    start_scales: np.ndarray,
    max_iterations: int,
    tolerance: float,
) -> Tuple[np.ndarray, float, float, int]:
    """Run Lloyd iterations from every starting scale simultaneously.

    Vectorized replacement for the per-start :func:`_lloyd` loop: all
    starts advance in lockstep on histogram statistics (see
    :func:`_bin_stats`), each freezing once its objective improvement
    drops below ``tolerance``.  The convergence objective uses the
    closed form ``(s/2^N)²·Σk² − 2(s/2^N)·Σkw + Σw²`` (exact up to
    cancellation ~1e-16, far below the 1e-10 tolerance); the *reported*
    MSE of the winning start is recomputed directly from its final codes
    so on-grid inputs still score exactly zero.

    Returns ``(codes, scale, mse, iterations)`` for the first start
    achieving the lowest final objective (first-wins on ties, matching
    the sequential multi-start loop this replaces).
    """
    order = np.argsort(flat, kind="stable")
    flat_sorted = flat[order]
    prefix_w = np.concatenate(([0.0], np.cumsum(flat_sorted)))
    sum_w2 = float(np.dot(flat, flat))
    n = flat.shape[0]
    denom = float(2 ** bits)

    scales = np.asarray(start_scales, dtype=np.float64).copy()
    num, den = _bin_stats(flat_sorted, prefix_w, scales, bits)

    def objective(s: np.ndarray, num: np.ndarray, den: np.ndarray) -> np.ndarray:
        f = s / denom
        return (f * f * den - 2.0 * f * num + sum_w2) / n

    previous = objective(scales, num, den)
    done = np.zeros(scales.shape[0], dtype=bool)
    iterations = np.zeros(scales.shape[0], dtype=np.intp)
    for it in range(1, max_iterations + 1):
        safe_den = np.where(den > 0.0, den, 1.0)
        updated = denom * num / safe_den
        usable = (den > 0.0) & (updated > 0.0) & ~done
        scales = np.where(usable, updated, scales)
        num, den = _bin_stats(flat_sorted, prefix_w, scales, bits)
        current = objective(scales, num, den)
        iterations[~done] = it
        converged = ~done & (previous - current < tolerance)
        previous = np.where(done, previous, current)
        done |= converged
        if bool(done.all()):
            break

    winner = int(np.argmin(previous))
    scale = float(scales[winner])
    codes = _assign(flat, bits, scale)
    mse = float(np.mean((scale * codes / denom - flat) ** 2))
    return codes, scale, mse, int(iterations[winner])


def initial_scale(weights: np.ndarray, bits: int) -> float:
    """Scale that maps the largest |weight| to the grid endpoint.

    This realizes the paper's ``N ≥ log2(max|D|/max|W|)`` constraint with
    equality: ``max|D| = 2^(N−1)`` lands exactly on ``max|W|``.
    """
    peak = float(np.max(np.abs(weights))) if weights.size else 0.0
    if peak == 0.0:
        return 1.0
    # quantized endpoint: scale · 2^(N−1) / 2^N = scale / 2  == peak
    return 2.0 * peak


def cluster_weights(
    weights: np.ndarray,
    bits: int,
    max_iterations: int = 25,
    tolerance: float = 1e-10,
) -> ClusteringResult:
    """Solve Eq. 6 for one weight array by multi-start Lloyd iterations.

    Lloyd's objective is non-convex in the scale (the assignment step is a
    step function), so a single start can stall in a local optimum that
    either saturates important outlier weights (scale too small) or wastes
    resolution on empty range (scale too large).  We start from several
    candidate ranges — the grid endpoint placed at different quantiles of
    |W| — and keep the best final MSE.
    """
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    if weights.size == 0:
        raise ValueError("cannot cluster an empty weight array")
    flat = weights.ravel().astype(np.float64)
    peak = float(np.max(np.abs(flat)))
    if peak == 0.0:
        return ClusteringResult(
            codes=np.zeros_like(weights), scale=1.0, bits=bits, mse=0.0, iterations=0
        )
    quantiles = np.quantile(np.abs(flat), [1.0, 0.999, 0.99, 0.95])
    endpoints = sorted({q for q in quantiles if q > 0})
    # Grid endpoint scale/2 lands on each candidate `endpoint`; all starts
    # run in lockstep and the best final objective wins (first on ties).
    start_scales = np.array([2.0 * endpoint for endpoint in endpoints])
    codes, scale, mse, iterations = _lloyd_multi(
        flat, bits, start_scales, max_iterations, tolerance
    )
    return ClusteringResult(
        codes=codes.reshape(weights.shape),
        scale=scale,
        bits=bits,
        mse=mse,
        iterations=iterations,
    )


@dataclass
class ModelClusteringReport:
    """Per-parameter clustering results for a whole model."""

    bits: int
    scope: str
    results: Dict[str, ClusteringResult] = field(default_factory=dict)

    @property
    def total_mse(self) -> float:
        """Size-weighted mean squared error across all clustered tensors."""
        total_err = 0.0
        total_n = 0
        for result in self.results.values():
            n = result.codes.size
            total_err += result.mse * n
            total_n += n
        return total_err / max(total_n, 1)

    def summary(self) -> str:
        lines = [f"Weight clustering: N={self.bits} bits, scope={self.scope}"]
        for name, result in self.results.items():
            lines.append(
                f"  {name}: scale={result.scale:.5f} mse={result.mse:.3e} "
                f"levels={result.levels_used} iters={result.iterations}"
            )
        lines.append(f"  overall mse={self.total_mse:.3e}")
        return "\n".join(lines)


def apply_weight_clustering(
    model: Module,
    bits: int,
    scope: str = "per_layer",
    include_bias: bool = True,
    max_iterations: int = 25,
) -> ModelClusteringReport:
    """Quantize every Conv2d/Linear weight in ``model`` in place (Eq. 6).

    Parameters
    ----------
    scope:
        ``"per_layer"`` — each layer's weight matrix gets its own scale
        (the paper clusters ``W``, the weight matrix of a layer mapped to
        one crossbar group); ``"global"`` — a single scale for the whole
        network (ablation: strictly worse, see
        ``benchmarks/bench_ablation_clustering_scope.py``).
    include_bias:
        Quantize biases onto the same per-layer grid (biases occupy an
        extra crossbar row on the SNC, so they face the same precision).
    """
    if scope not in ("per_layer", "global"):
        raise ValueError(f"scope must be 'per_layer' or 'global', got {scope!r}")
    report = ModelClusteringReport(bits=bits, scope=scope)
    layers = weight_bearing_modules(model)
    if not layers:
        raise ValueError("model has no Conv2d/Linear layers to quantize")

    if scope == "global":
        stacked = np.concatenate([m.weight.data.ravel() for _, m in layers])
        shared = cluster_weights(stacked, bits, max_iterations=max_iterations)
        scale = shared.scale
        for name, module in layers:
            codes = _assign(module.weight.data, bits, scale)
            quantized = scale * codes / (2 ** bits)
            mse = float(np.mean((quantized - module.weight.data) ** 2))
            module.weight.data[...] = quantized
            _stamp_grid(module, scale, bits)
            report.results[f"{name}.weight"] = ClusteringResult(
                codes=codes, scale=scale, bits=bits, mse=mse, iterations=shared.iterations
            )
            if include_bias and getattr(module, "bias", None) is not None:
                _cluster_bias(module, name, scale, bits, report)
        return report

    for name, module in layers:
        result = cluster_weights(module.weight.data, bits, max_iterations=max_iterations)
        module.weight.data[...] = result.quantized
        _stamp_grid(module, result.scale, bits)
        report.results[f"{name}.weight"] = result
        if include_bias and getattr(module, "bias", None) is not None:
            _cluster_bias(module, name, result.scale, bits, report)
    return report


def _cluster_bias(
    module: Module, name: str, scale: float, bits: int, report: ModelClusteringReport
) -> None:
    """Snap a bias vector onto the layer's grid (codes may exceed ±2^(N−1)).

    A bias is realized as one crossbar row driven by a constant input, so it
    shares the grid *spacing* but not the ±2^(N−1) endpoint clamp — the row
    can be replicated.  We therefore round without saturation.
    """
    step = scale / float(2 ** bits)
    codes = np.rint(module.bias.data / step)
    quantized = codes * step
    mse = float(np.mean((quantized - module.bias.data) ** 2))
    module.bias.data[...] = quantized
    report.results[f"{name}.bias"] = ClusteringResult(
        codes=codes, scale=scale, bits=bits, mse=mse, iterations=0
    )


def naive_weight_quantization(
    model: Module, bits: int, include_bias: bool = True, scale_mode: str = "fixed"
) -> ModelClusteringReport:
    """The "w/o clustering" arm: direct rounding onto the grid, no Lloyd.

    ``scale_mode="fixed"`` (the paper's baseline) rounds onto the *literal*
    Eq. 6 grid ``D/2^N`` — spacing ``2^-N``, saturation at ±1/2 — ignoring
    each layer's actual weight range; this is what "quantized to the
    available resistance states" without clustering means, and it is why
    the w/o rows of Table 3 collapse at 3 bits.  ``scale_mode="range"``
    snaps the grid endpoint to ``max|W|`` first but still skips the Lloyd
    iterations — an ablation isolating the benefit of the optimization step
    from the benefit of range matching.
    """
    if scale_mode not in ("fixed", "range"):
        raise ValueError(f"scale_mode must be 'fixed' or 'range', got {scale_mode!r}")
    report = ModelClusteringReport(bits=bits, scope=f"naive-{scale_mode}")
    for name, module in weight_bearing_modules(model):
        scale = 1.0 if scale_mode == "fixed" else initial_scale(module.weight.data, bits)
        codes = _assign(module.weight.data, bits, scale)
        quantized = scale * codes / (2 ** bits)
        mse = float(np.mean((quantized - module.weight.data) ** 2))
        module.weight.data[...] = quantized
        _stamp_grid(module, scale, bits)
        report.results[f"{name}.weight"] = ClusteringResult(
            codes=codes, scale=scale, bits=bits, mse=mse, iterations=0
        )
        if include_bias and getattr(module, "bias", None) is not None:
            _cluster_bias(module, name, scale, bits, report)
    return report


def _stamp_grid(module: Module, scale: float, bits: int) -> None:
    """Record the layer's fixed-point grid on the module itself.

    The inference engine (:mod:`repro.runtime.plan`) recovers the integer
    weight codes from these to compile its integer fast path; crossbar
    mapping recomputes codes from the clustering report instead, so the
    stamp is advisory metadata, not load-bearing state.
    """
    module._grid_scale = float(scale)
    module._grid_bits = int(bits)
