"""Quantization-aware fine-tuning (extension beyond the paper).

The paper's flow is *post-training* quantization after regularized
training.  A natural extension — standard in later QAT literature — is to
fine-tune *through* the quantizers with straight-through estimators:

- every forward pass runs with weights snapped onto their fixed-point grid
  and activations quantized to M-bit integers,
- gradients flow through both quantizers via STE,
- updates accumulate in full-precision *master weights* (re-quantized each
  step), so small gradients are not rounded away.

This recovers additional accuracy at very low bit widths (see
``benchmarks/bench_ablations.py`` / EXPERIMENTS.md) while producing exactly
the same deployable artifact: grid weights + integer signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.metrics import evaluate_accuracy
from repro.core.modules import QuantizedActivation
from repro.core.quantizers import quantize_weights_fixed_point
from repro.core.surgery import clone_module, fold_batchnorm, replace_modules, weight_bearing_modules
from repro.core.weight_clustering import apply_weight_clustering
from repro.nn.data import DataLoader, Dataset
from repro.nn.losses import cross_entropy
from repro.nn.modules import Module, ReLU
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


@dataclass
class FineTuneConfig:
    """Hyper-parameters for STE fine-tuning."""

    signal_bits: int = 4
    weight_bits: int = 4
    epochs: int = 3
    batch_size: int = 32
    lr: float = 5e-4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if min(self.signal_bits, self.weight_bits) < 1:
            raise ValueError("bit widths must be >= 1")


@dataclass
class FineTuneResult:
    """The fine-tuned deployable model plus training traces."""

    model: Module
    losses: List[float]
    scales: Dict[str, float]


def finetune_quantized(
    trained_model: Module,
    train_set: Dataset,
    config: FineTuneConfig,
    eval_set: Optional[Dataset] = None,
) -> FineTuneResult:
    """Fine-tune a trained float model into a fully quantized one.

    The input model is cloned (and its batchnorms folded); clustering fixes
    the per-layer grid scales once, then every optimizer step re-snaps the
    master weights onto that grid for the forward pass.  The returned model
    carries grid weights and quantized activations — deployable directly on
    the SNC via :func:`repro.snc.mapping.map_network`.
    """
    model = clone_module(trained_model)
    model.eval()
    fold_batchnorm(model)

    # Fix the grids: cluster once, remember per-layer scales.
    clustering = apply_weight_clustering(model, config.weight_bits)
    scales = {
        name: result.scale
        for name, result in clustering.results.items()
        if name.endswith(".weight")
    }

    # Quantize activations (STE backward built in).
    bits = config.signal_bits
    replace_modules(
        model,
        predicate=lambda m: isinstance(m, ReLU),
        factory=lambda old: QuantizedActivation(old, bits),
    )

    layers = weight_bearing_modules(model)
    masters: Dict[int, np.ndarray] = {
        id(module): module.weight.data.copy() for _, module in layers
    }

    def snap_all() -> None:
        for name, module in layers:
            scale = scales[f"{name}.weight"]
            module.weight.data[...] = quantize_weights_fixed_point(
                masters[id(module)], config.weight_bits, scale
            )

    model.train()
    params = [module.weight for _, module in layers]
    biases = [module.bias for _, module in layers if module.bias is not None]
    optimizer = Adam(params + biases, lr=config.lr)
    rng = np.random.default_rng(config.seed)
    loader = DataLoader(train_set, batch_size=config.batch_size, rng=rng)

    losses: List[float] = []
    for _ in range(config.epochs):
        epoch_loss = 0.0
        seen = 0
        for images, labels in loader:
            snap_all()
            loss = cross_entropy(model(Tensor(images)), labels)
            optimizer.zero_grad()
            loss.backward()
            # Apply the (STE) gradients to the master weights, then let the
            # optimizer's own step update the visible (quantized) tensors —
            # we instead redirect: copy masters in, step, copy back out.
            for _, module in layers:
                module.weight.data[...] = masters[id(module)]
            optimizer.step()
            for _, module in layers:
                masters[id(module)][...] = module.weight.data
            epoch_loss += loss.item() * len(labels)
            seen += len(labels)
        losses.append(epoch_loss / seen)

    snap_all()
    # Snap biases onto the layer grids too, so the returned model is
    # byte-identical to what the crossbar mapping will realize.
    for name, module in layers:
        if module.bias is not None:
            step_size = scales[f"{name}.weight"] / float(2 ** config.weight_bits)
            module.bias.data[...] = np.rint(module.bias.data / step_size) * step_size
    model.eval()
    return FineTuneResult(model=model, losses=losses, scales=scales)


def finetune_accuracy_gain(
    trained_model: Module,
    train_set: Dataset,
    test_set: Dataset,
    config: FineTuneConfig,
) -> Dict[str, float]:
    """Measure post-training-quantized vs fine-tuned accuracy (both %)."""
    from repro.core.deployment import DeploymentConfig, deploy_model

    post_training, _ = deploy_model(
        trained_model,
        DeploymentConfig(
            signal_bits=config.signal_bits,
            weight_bits=config.weight_bits,
            weight_mode="clustered",
        ),
    )
    before = evaluate_accuracy(post_training, test_set) * 100.0
    result = finetune_quantized(trained_model, train_set, config)
    after = evaluate_accuracy(result.model, test_set) * 100.0
    return {"post_training": before, "fine_tuned": after, "gain": after - before}
