"""Activation taps: capture inter-layer signals during the forward pass.

The paper's Eq. 2 sums a regularizer over the *output of every layer*
(``O^i``).  In module terms the inter-layer signals are the outputs of the
activation modules (ReLU) — what actually crosses layers as spikes on the
SNC.  :class:`SignalTap` hooks those modules and exposes the captured
tensors both

- live (``tap.signals`` — the autograd tensors of the *current* forward,
  used to build the regularization term), and
- as histograms (:meth:`collect_distribution`, used to regenerate Fig. 4).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nn.modules import Module, ReLU
from repro.nn.tensor import Tensor


def default_signal_modules(model: Module) -> List[Tuple[str, Module]]:
    """The modules whose outputs are inter-layer signals: all ReLUs.

    Excludes the final classifier output, which stays in the digital domain
    (the paper quantizes signals *between* layers; the last layer's logits
    feed an argmax, not another crossbar).
    """
    return [
        (name, module)
        for name, module in model.named_modules()
        if isinstance(module, ReLU)
    ]


class SignalTap:
    """Record the outputs of selected modules on every forward pass.

    Parameters
    ----------
    model:
        The network to instrument.
    selector:
        ``model -> [(name, module)]`` choosing which outputs count as
        inter-layer signals.  Defaults to all :class:`~repro.nn.modules.ReLU`
        modules.

    Use as a context manager, or call :meth:`attach` / :meth:`detach`.
    """

    def __init__(
        self,
        model: Module,
        selector: Callable[[Module], List[Tuple[str, Module]]] = default_signal_modules,
    ) -> None:
        self.model = model
        self.targets = selector(model)
        if not self.targets:
            raise ValueError("selector matched no modules; nothing to tap")
        self.signals: List[Tensor] = []
        self.names: List[str] = [name for name, _ in self.targets]
        self._removers: List[Callable[[], None]] = []

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> "SignalTap":
        if self._removers:
            raise RuntimeError("tap already attached")
        for name, module in self.targets:
            self._removers.append(module.register_forward_hook(self._record))
        return self

    def detach(self) -> None:
        for remover in self._removers:
            remover()
        self._removers.clear()
        self.signals.clear()

    def __enter__(self) -> "SignalTap":
        return self.attach()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.detach()

    # -- capture -----------------------------------------------------------
    def _record(self, module: Module, inputs: Tensor, output: Tensor) -> None:
        self.signals.append(output)

    def clear(self) -> None:
        """Drop signals captured so far (call between forward passes)."""
        self.signals.clear()

    # -- analysis helpers ----------------------------------------------------
    def collect_distribution(
        self,
        forward: Callable[[], Tensor],
        layer_index: Optional[int] = None,
    ) -> np.ndarray:
        """Run ``forward()`` once and return captured signal values.

        ``layer_index`` selects one tapped layer (e.g. 0 = the first hidden
        layer, as in Fig. 4); ``None`` concatenates all layers.
        """
        self.clear()
        forward()
        if not self.signals:
            raise RuntimeError("forward() produced no tapped signals")
        if layer_index is None:
            return np.concatenate([s.data.ravel() for s in self.signals])
        return self.signals[layer_index].data.ravel().copy()
