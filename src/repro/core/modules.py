"""Quantization wrapper modules inserted by model surgery.

:class:`QuantizedActivation` replaces each activation module when a network
is deployed with M-bit fixed-integer inter-layer signals; it is the software
twin of the IFC + counter pair on the SNC (relu → spike train → counted
integer).
"""

from __future__ import annotations

from repro.core import quantizers as Q
from repro.core.ste import ste_quantize_signals
from repro.nn.modules import Module
from repro.nn.tensor import Tensor


class QuantizedActivation(Module):
    """Wrap an activation module and quantize its output to M-bit integers.

    Parameters
    ----------
    inner:
        The original activation module (usually ReLU).
    bits:
        Target signal bit width M.
    gain:
        IFC conversion gain — spike count = ``round(gain · signal)``.
        Must be the *same* for every activation in a network (it is one
        hardware design constant, realized in the IFC threshold); the
        deployment layer enforces this.  Default 1.0 = the paper's literal
        integers-as-counts scheme.
    enabled:
        When False the wrapper is transparent (useful for A/B evaluation
        without re-building the model).
    """

    def __init__(
        self, inner: Module, bits: int, gain: float = 1.0, enabled: bool = True
    ) -> None:
        super().__init__()
        if bits < 1:
            raise ValueError(f"bits must be >= 1, got {bits}")
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.inner = inner
        self.bits = bits
        self.gain = gain
        self.enabled = enabled

    def forward(self, x: Tensor) -> Tensor:
        out = self.inner(x)
        if not self.enabled:
            return out
        return ste_quantize_signals(out, self.bits, self.gain)

    def __repr__(self) -> str:
        return (
            f"QuantizedActivation({self.inner!r}, bits={self.bits}, "
            f"gain={self.gain:.4g}, enabled={self.enabled})"
        )


class InputQuantizer(Module):
    """Quantize network inputs to M-bit integers (spike-coded input layer).

    Inputs are shifted/scaled to the non-negative spike-count range first:
    ``q = quantize((x − offset) · gain)``, then mapped back so downstream
    layers see the original scale.  Used by the SNC deployment, where even
    the first layer's inputs arrive as spikes.
    """

    def __init__(self, bits: int, offset: float = 0.0, gain: float = 1.0) -> None:
        super().__init__()
        if gain <= 0:
            raise ValueError(f"gain must be positive, got {gain}")
        self.bits = bits
        self.offset = offset
        self.gain = gain

    def forward(self, x: Tensor) -> Tensor:
        shifted = (x - self.offset) * self.gain
        quantized = ste_quantize_signals(shifted, self.bits)
        return quantized * (1.0 / self.gain) + self.offset

    def __repr__(self) -> str:
        return f"InputQuantizer(bits={self.bits}, offset={self.offset}, gain={self.gain})"


def calibrate_input_quantizer(images, bits: int) -> InputQuantizer:
    """Fit an :class:`InputQuantizer` covering the data range of ``images``.

    The gain maps ``[min, max]`` onto ``[0, 2^M − 1]`` so the spike window
    is fully used.
    """
    low = float(images.min())
    high = float(images.max())
    span = max(high - low, 1e-12)
    gain = (Q.signal_levels(bits) - 1) / span
    return InputQuantizer(bits=bits, offset=low, gain=gain)
