"""repro.core — the paper's contribution (Sec. 3).

- :mod:`repro.core.regularizers` / :mod:`repro.core.neuron_convergence` —
  Neuron Convergence: the Eq. 2–3 activation regularizer that pins every
  layer's signals into the uniform range ``[0, 2^(M−1)]``.
- :mod:`repro.core.weight_clustering` — Weight Clustering: the Eq. 6
  linear-codebook solver for N-bit fixed-point weights.
- :mod:`repro.core.quantizers` — the fixed-integer / fixed-point / dynamic
  fixed point quantization primitives.
- :mod:`repro.core.deployment` / :mod:`repro.core.pipeline` — turn trained
  float networks into quantized deployable ones and run the full
  train→quantize→evaluate comparison.
"""

from repro.core.variation_training import (
    VariationTrainingConfig,
    train_with_variation,
    variation_robustness,
)
from repro.core.finetune import (
    FineTuneConfig,
    FineTuneResult,
    finetune_accuracy_gain,
    finetune_quantized,
)
from repro.core.deployment import (
    DeploymentConfig,
    DeploymentInfo,
    DynamicQuantizedActivation,
    calibrate_signal_gain,
    deploy_dynamic_fixed_point,
    deploy_model,
)
from repro.core.modules import InputQuantizer, QuantizedActivation, calibrate_input_quantizer
from repro.core.neuron_convergence import NeuronConvergence, fraction_outside_range
from repro.core.pipeline import PipelineConfig, PipelineReport, QuantizationPipeline
from repro.core.qat import Trainer, TrainerConfig, TrainingHistory, train_model
from repro.core.quantizers import (
    DynamicFixedPointFormat,
    fit_dynamic_fixed_point,
    quantize_dynamic,
    quantize_dynamic_fixed_point,
    quantize_signals,
    quantize_weights_fixed_point,
    signal_levels,
    weight_grid,
)
from repro.core.regularizers import (
    DEFAULT_ALPHA,
    convergence_threshold,
    l1_penalty,
    make_penalty,
    neuron_convergence_penalty,
    regularizer_curve,
    truncated_l1_penalty,
)
from repro.core.ste import ste_quantize_signals, ste_quantize_weights
from repro.core.surgery import clone_module, fold_batchnorm, replace_modules, weight_bearing_modules
from repro.core.taps import SignalTap, default_signal_modules
from repro.core.weight_clustering import (
    ClusteringResult,
    ModelClusteringReport,
    apply_weight_clustering,
    cluster_weights,
    naive_weight_quantization,
)

__all__ = [
    # regularization / training
    "NeuronConvergence",
    "fraction_outside_range",
    "Trainer",
    "TrainerConfig",
    "TrainingHistory",
    "train_model",
    "DEFAULT_ALPHA",
    "convergence_threshold",
    "neuron_convergence_penalty",
    "l1_penalty",
    "truncated_l1_penalty",
    "make_penalty",
    "regularizer_curve",
    # quantizers
    "quantize_signals",
    "signal_levels",
    "quantize_weights_fixed_point",
    "weight_grid",
    "DynamicFixedPointFormat",
    "fit_dynamic_fixed_point",
    "quantize_dynamic_fixed_point",
    "quantize_dynamic",
    "ste_quantize_signals",
    "ste_quantize_weights",
    # clustering
    "cluster_weights",
    "apply_weight_clustering",
    "naive_weight_quantization",
    "ClusteringResult",
    "ModelClusteringReport",
    # surgery / taps / modules
    "SignalTap",
    "default_signal_modules",
    "clone_module",
    "replace_modules",
    "fold_batchnorm",
    "weight_bearing_modules",
    "QuantizedActivation",
    "InputQuantizer",
    "calibrate_input_quantizer",
    # deployment / pipeline
    "DeploymentConfig",
    "DeploymentInfo",
    "calibrate_signal_gain",
    "deploy_model",
    "deploy_dynamic_fixed_point",
    "DynamicQuantizedActivation",
    "QuantizationPipeline",
    "PipelineConfig",
    "PipelineReport",
    # fine-tuning extension
    "FineTuneConfig",
    "FineTuneResult",
    "finetune_quantized",
    "finetune_accuracy_gain",
    # variation-aware training extension
    "VariationTrainingConfig",
    "train_with_variation",
    "variation_robustness",
]
