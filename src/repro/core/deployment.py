"""Turn a trained float network into its quantized, deployable twin.

This is the software model of "deploying the DNN on the SNC": inter-layer
signals become M-bit fixed integers (every ReLU gains a quantizer — the
IFC + counter pair in hardware) and weights become N-bit fixed-point values
(the crossbar conductance states).  The original model is never mutated;
deployment clones it first.

Also implements the comparison baseline of Tables 4–5: Gysel et al.'s 8-bit
*dynamic* fixed point [23], where every layer carries its own calibrated
fractional length for both weights and activations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from repro.core import quantizers as Q
from repro.core.modules import InputQuantizer, QuantizedActivation, calibrate_input_quantizer
from repro.core.surgery import clone_module, fold_batchnorm, replace_modules, weight_bearing_modules
from repro.core.weight_clustering import (
    ModelClusteringReport,
    apply_weight_clustering,
    naive_weight_quantization,
)
from repro.nn.modules import Module, ReLU
from repro.nn.tensor import Tensor, no_grad


@dataclass
class DeploymentConfig:
    """How to quantize a trained network for the SNC.

    Attributes
    ----------
    signal_bits:
        M — inter-layer signal width; ``None`` keeps signals in float
        (used by Table 3, which quantizes weights only).
    weight_bits:
        N — weight width; ``None`` keeps weights in float (used by
        Table 2, which quantizes signals only).
    weight_mode:
        ``"clustered"`` (the proposed Weight Clustering), ``"naive"``
        (fixed Eq. 6 grid, the "w/o" arm), ``"naive_range"`` (range-snapped
        grid without Lloyd iterations — ablation), or ``"none"``.
    clustering_scope:
        ``"per_layer"`` or ``"global"`` scale sharing for clustering.
    fold_bn:
        Fold batchnorm into convolutions before weight quantization
        (required for crossbar deployment; harmless otherwise).
    include_bias:
        Quantize biases onto the layer grid too.
    input_bits:
        If set, also quantize network *inputs* (full SNC deployment, where
        images enter as spike trains).  Requires calibration images.
    static_check:
        Gate deployment on the static verifier (:mod:`repro.check`):
        ``"error"`` (default) refuses to return a network with any
        error-severity diagnostic (:class:`DeploymentCheckError`);
        ``"warn"`` records the report but never refuses; ``"off"``
        skips the check entirely.
    signal_gain:
        IFC conversion gain, uniform across the whole network: spike count
        = ``round(gain · signal)``.  ``1.0`` (default) is the paper's
        literal scheme — appropriate for networks whose training let the
        activations grow to integer scale (LeNet/AlexNet here).  ``"auto"``
        calibrates one network-wide gain from calibration images so the
        largest observed signal uses the full window — necessary for
        batchnorm networks (ResNet), whose normalization pins activations
        to O(1) scale regardless of training.  Still a single hardware
        constant (the IFC threshold scale), so the paper's "uniform values
        in all layers" property is preserved.
    """

    signal_bits: Optional[int] = 4
    weight_bits: Optional[int] = 4
    weight_mode: str = "clustered"
    clustering_scope: str = "per_layer"
    fold_bn: bool = True
    include_bias: bool = True
    input_bits: Optional[int] = None
    signal_gain: Union[float, str] = 1.0
    static_check: str = "error"

    def __post_init__(self) -> None:
        valid = ("clustered", "naive", "naive_range", "none")
        if self.weight_mode not in valid:
            raise ValueError(f"weight_mode must be one of {valid}, got {self.weight_mode!r}")
        if self.static_check not in ("off", "warn", "error"):
            raise ValueError(
                f"static_check must be 'off', 'warn' or 'error', got {self.static_check!r}"
            )
        if isinstance(self.signal_gain, str):
            if self.signal_gain != "auto":
                raise ValueError(
                    f"signal_gain must be a positive float or 'auto', got {self.signal_gain!r}"
                )
        elif self.signal_gain <= 0:
            raise ValueError(f"signal_gain must be positive, got {self.signal_gain}")


@dataclass
class DeploymentInfo:
    """What happened during deployment (for reports and tests)."""

    quantized_activations: int = 0
    folded_batchnorms: int = 0
    clustering: Optional[ModelClusteringReport] = None
    dynamic_formats: Dict[str, Q.DynamicFixedPointFormat] = field(default_factory=dict)
    signal_gain: float = 1.0
    check_report: Optional[object] = None  # repro.check.CheckReport


class DeploymentCheckError(RuntimeError):
    """The static verifier refused the deployment; ``.report`` has why."""

    def __init__(self, report) -> None:
        super().__init__(
            "static check refused deployment:\n" + report.summary()
        )
        self.report = report


def calibrate_signal_gain(
    model: Module,
    calibration_images: np.ndarray,
    bits: int,
    percentile: float = 99.9,
) -> float:
    """Pick the single network-wide IFC gain from observed signal ranges.

    Runs one forward pass, taps every ReLU, and maps the ``percentile`` of
    all positive signal values (pooled across layers — the gain must be
    uniform) onto the top of the spike window ``2^M − 1``.  Values above
    the percentile saturate, trading a little clipping for resolution.
    """
    relus = [m for m in model.modules() if isinstance(m, ReLU)]
    if not relus:
        raise ValueError("model has no ReLU activations to calibrate against")
    captured = []

    def record(module, inputs, output) -> None:
        captured.append(output.data.ravel())

    removers = [module.register_forward_hook(record) for module in relus]
    try:
        with no_grad():
            model(Tensor(calibration_images))
    finally:
        for remover in removers:
            remover()
    values = np.concatenate(captured)
    positive = values[values > 0]
    if positive.size == 0:
        return 1.0
    top = float(np.percentile(positive, percentile))
    if top <= 0:
        return 1.0
    return (2 ** bits - 1) / top


def deploy_model(
    model: Module,
    config: DeploymentConfig,
    calibration_images: Optional[np.ndarray] = None,
) -> tuple:
    """Clone ``model`` and quantize it per ``config``.

    Returns ``(deployed_model, DeploymentInfo)``.  The deployed model is in
    eval mode.
    """
    deployed = clone_module(model)
    deployed.eval()
    info = DeploymentInfo()

    if config.fold_bn:
        info.folded_batchnorms = fold_batchnorm(deployed)

    if config.weight_bits is not None and config.weight_mode != "none":
        if config.weight_mode == "clustered":
            info.clustering = apply_weight_clustering(
                deployed,
                config.weight_bits,
                scope=config.clustering_scope,
                include_bias=config.include_bias,
            )
        elif config.weight_mode == "naive":
            info.clustering = naive_weight_quantization(
                deployed, config.weight_bits, include_bias=config.include_bias,
                scale_mode="fixed",
            )
        else:  # naive_range
            info.clustering = naive_weight_quantization(
                deployed, config.weight_bits, include_bias=config.include_bias,
                scale_mode="range",
            )

    if config.signal_bits is not None:
        bits = config.signal_bits
        gain = config.signal_gain
        if gain == "auto":
            if calibration_images is None:
                raise ValueError("signal_gain='auto' requires calibration_images")
            gain = calibrate_signal_gain(deployed, calibration_images, bits)
        info.signal_gain = float(gain)
        info.quantized_activations = replace_modules(
            deployed,
            predicate=lambda m: isinstance(m, ReLU),
            factory=lambda old: QuantizedActivation(old, bits, gain=float(gain)),
        )

    if config.input_bits is not None:
        if calibration_images is None:
            raise ValueError("input_bits requires calibration_images")
        quantizer = calibrate_input_quantizer(calibration_images, config.input_bits)
        deployed = _PrependInput(quantizer, deployed)

    if config.static_check != "off":
        # Lazy import: repro.check interprets the module types defined here.
        from repro.check import check_module

        input_shape = (
            tuple(calibration_images.shape[1:]) if calibration_images is not None else None
        )
        report = check_module(
            deployed, input_shape=input_shape,
            target=f"deploy:{type(model).__name__}",
        )
        info.check_report = report
        if config.static_check == "error" and report.has_errors:
            raise DeploymentCheckError(report)

    return deployed, info


def make_fallback_reference(software: Module) -> Module:
    """A frozen copy of the quantized software twin for fallback serving.

    The guard runtime (:mod:`repro.runtime.guard`) must be able to serve
    from the software model even while diagnosis/remediation mutate the
    deployed network, so it gets its own eval-mode clone with all forward
    hooks dropped — bit-exact with the original twin by construction.
    """
    twin = clone_module(software)
    twin.eval()
    return twin


def make_inference_engine(deployed: Module, telemetry=None, **config_overrides):
    """A compiled :class:`~repro.runtime.engine.InferenceEngine` for a
    deployed model — the serving front end for batch inference.

    On quantized deployments (``weight_mode="clustered"``/``"naive"`` with
    signal quantizers) the engine's integer fast path engages
    automatically; keyword overrides are forwarded to
    :class:`~repro.runtime.engine.EngineConfig` (e.g. ``dtype=np.float64``
    for bit-identical float plans, ``int_path="off"`` to force them).
    ``telemetry`` (a :class:`repro.obs.Telemetry`) turns on run spans,
    latency histograms, and registry-mirrored counters.
    """
    # Lazy import: repro.runtime depends on this module.
    from repro.runtime.engine import EngineConfig, InferenceEngine

    return InferenceEngine(deployed, EngineConfig(**config_overrides),
                           telemetry=telemetry)


def make_model_server(
    deployed: Module,
    serve_config=None,
    warmup_images: Optional[np.ndarray] = None,
    fallback=None,
    health_probe=None,
    telemetry=None,
    **engine_overrides,
):
    """A :class:`~repro.serve.server.ModelServer` over ``deployed`` — the
    serving front end for *concurrent* traffic.

    Each replica gets its own engine via :func:`make_inference_engine`
    (plans and buffer pools are per-replica); ``engine_overrides`` are
    forwarded to every replica's :class:`~repro.runtime.engine.
    EngineConfig`.  Pass ``warmup_images`` to trace all plans before the
    first request, and ``serve_config`` (a :class:`~repro.serve.server.
    ServeConfig`) to tune workers / batch size / wait budget / queue
    bound.  See ``docs/serving.md`` for the architecture and tuning
    guide.  ``telemetry`` (a :class:`repro.obs.Telemetry`) instruments
    the queue, batcher, replicas, and every replica engine.

    With ``serve_config.pool == "process"`` the replicas become worker
    *processes*: the deployed module is pickled into a
    :class:`~repro.serve.procpool.WorkerSpec` so every worker rebuilds
    and traces its own engine, and request tensors travel through
    shared memory instead of the GIL (see docs/serving.md, "Process
    pool").  Worker engines run untelemetered; the parent-side queue,
    batcher, and pool carry all serving metrics.
    """
    # Lazy import: repro.serve sits above this module.
    from repro.serve import ModelServer

    worker_spec = None
    if serve_config is not None and getattr(serve_config, "pool", "thread") == "process":
        from repro.serve.procpool import WorkerSpec

        worker_spec = WorkerSpec.for_module(
            deployed,
            batch_rows=serve_config.batch_size,
            **engine_overrides,
        )
    return ModelServer(
        engine_factory=lambda: make_inference_engine(
            deployed, telemetry=telemetry, **engine_overrides
        ),
        config=serve_config,
        fallback=fallback,
        health_probe=health_probe,
        warmup_images=warmup_images,
        telemetry=telemetry,
        worker_spec=worker_spec,
    )


class _PrependInput(Module):
    """Run an input quantizer before the wrapped network."""

    def __init__(self, input_quantizer: InputQuantizer, network: Module) -> None:
        super().__init__()
        self.input_quantizer = input_quantizer
        self.network = network

    def forward(self, x: Tensor) -> Tensor:
        return self.network(self.input_quantizer(x))


# ---------------------------------------------------------------------------
# Gysel et al. [23] — 8-bit dynamic fixed point baseline
# ---------------------------------------------------------------------------

class DynamicQuantizedActivation(Module):
    """ReLU followed by per-layer dynamic fixed point quantization."""

    def __init__(self, inner: Module, fmt: Q.DynamicFixedPointFormat) -> None:
        super().__init__()
        self.inner = inner
        self.fmt = fmt

    def forward(self, x: Tensor) -> Tensor:
        out = self.inner(x)
        quantized = Q.quantize_dynamic_fixed_point(out.data, self.fmt)

        def backward(grad) -> None:
            if out.requires_grad:
                inside = (out.data >= self.fmt.min_value) & (out.data <= self.fmt.max_value)
                out._accumulate(grad * inside)

        return Tensor._make(quantized, (out,), backward)

    def __repr__(self) -> str:
        return f"DynamicQuantizedActivation(bits={self.fmt.bits}, fl={self.fmt.fractional_bits})"


def deploy_dynamic_fixed_point(
    model: Module,
    calibration_images: np.ndarray,
    bits: int = 8,
    fold_bn: bool = True,
) -> tuple:
    """Deploy with Gysel-style 8-bit dynamic fixed point everywhere.

    Per layer: weights get a format fitted to their own range; activations
    get a format fitted to ranges observed on ``calibration_images``.  This
    is the "[23]" baseline row of Tables 4 and 5.
    """
    deployed = clone_module(model)
    deployed.eval()
    info = DeploymentInfo()
    if fold_bn:
        info.folded_batchnorms = fold_batchnorm(deployed)

    # Weights: per-layer fitted formats.
    for name, module in weight_bearing_modules(deployed):
        fmt = Q.fit_dynamic_fixed_point(module.weight.data, bits)
        module.weight.data[...] = Q.quantize_dynamic_fixed_point(module.weight.data, fmt)
        info.dynamic_formats[f"{name}.weight"] = fmt
        if module.bias is not None:
            bias_fmt = Q.fit_dynamic_fixed_point(module.bias.data, bits)
            module.bias.data[...] = Q.quantize_dynamic_fixed_point(module.bias.data, bias_fmt)
            info.dynamic_formats[f"{name}.bias"] = bias_fmt

    # Activations: calibrate ranges with one forward pass, then wrap.
    relus = [
        (name, module)
        for name, module in deployed.named_modules()
        if isinstance(module, ReLU)
    ]
    peaks: Dict[int, float] = {}

    def record_peak(module, inputs, output) -> None:
        peaks[id(module)] = max(peaks.get(id(module), 0.0), float(output.data.max()))

    removers = [module.register_forward_hook(record_peak) for _, module in relus]
    with no_grad():
        deployed(Tensor(calibration_images))
    for remover in removers:
        remover()

    formats = {
        id(module): Q.fit_dynamic_fixed_point(
            np.array([peaks.get(id(module), 1.0)]), bits
        )
        for _, module in relus
    }
    info.quantized_activations = replace_modules(
        deployed,
        predicate=lambda m: isinstance(m, ReLU),
        factory=lambda old: DynamicQuantizedActivation(old, formats[id(old)]),
    )
    for (name, module) in relus:
        info.dynamic_formats[f"{name}.act"] = formats[id(module)]
    return deployed, info
