"""Model surgery: module replacement and batch-norm folding.

Used by the quantization pipeline to

- swap every ReLU for a :class:`~repro.core.modules.QuantizedActivation`
  when building the deployed (fixed-integer-signal) network, and
- fold batch normalization into the preceding convolution before weight
  quantization, since the memristor crossbar stores one weight matrix per
  layer and has no separate normalization hardware.
"""

from __future__ import annotations

import copy
from typing import Callable, List, Tuple

import numpy as np

from repro.nn.modules import BatchNorm2d, Conv2d, Identity, Module, Sequential
from repro.nn.tensor import Tensor


def clone_module(module: Module) -> Module:
    """Deep-copy a module (parameters, buffers, structure).

    Forward hooks are dropped from the clone — they typically close over
    external state that must not be shared.
    """
    cloned = copy.deepcopy(module)
    for sub in cloned.modules():
        sub.clear_forward_hooks()
    return cloned


def replace_modules(
    root: Module,
    predicate: Callable[[Module], bool],
    factory: Callable[[Module], Module],
) -> int:
    """Replace every descendant matching ``predicate`` with ``factory(old)``.

    Returns the number of replacements.  Handles both attribute-registered
    children and :class:`Sequential` position lists.  The root itself is
    never replaced.
    """
    count = 0
    for module in list(root.modules()):
        for name, child in list(module._modules.items()):
            if predicate(child):
                replacement = factory(child)
                module._modules[name] = replacement
                # Keep the attribute reference coherent when it exists.
                if getattr(module, name, None) is child:
                    object.__setattr__(module, name, replacement)
                if isinstance(module, Sequential):
                    index = int(name)
                    module.layers[index] = replacement
                count += 1
    return count


def _fold_pair(conv: Conv2d, bn: BatchNorm2d) -> None:
    """Fold eval-mode batchnorm statistics into the convolution, in place.

    ``y = γ·(conv(x) − μ)/σ + β``  becomes  ``conv'(x)`` with
    ``w' = w·γ/σ`` and ``b' = (b − μ)·γ/σ + β``.
    """
    std = np.sqrt(bn.running_var + bn.eps)
    scale = bn.gamma.data / std
    conv.weight.data *= scale[:, None, None, None]
    bias = conv.bias.data if conv.bias is not None else np.zeros(conv.out_channels)
    new_bias = (bias - bn.running_mean) * scale + bn.beta.data
    if conv.bias is None:
        conv.bias = Tensor(new_bias, requires_grad=True)
    else:
        conv.bias.data[...] = new_bias


def fold_batchnorm(root: Module) -> int:
    """Fold every Conv2d→BatchNorm2d pair; replace the BN with Identity.

    Pairing is positional: within each container, a BatchNorm2d immediately
    following a Conv2d in registration order is folded into it.  All models
    in :mod:`repro.models` register in forward order, so this matches the
    dataflow.  Returns the number of folds; the model must be in eval mode
    semantics (running stats are used).
    """
    folds = 0
    for module in list(root.modules()):
        children = list(module._modules.items())
        for (name_a, child_a), (name_b, child_b) in zip(children, children[1:]):
            if isinstance(child_a, Conv2d) and isinstance(child_b, BatchNorm2d):
                _fold_pair(child_a, child_b)
                identity = Identity()
                module._modules[name_b] = identity
                if getattr(module, name_b, None) is child_b:
                    object.__setattr__(module, name_b, identity)
                if isinstance(module, Sequential):
                    module.layers[int(name_b)] = identity
                folds += 1
    return folds


def weight_bearing_modules(root: Module) -> List[Tuple[str, Module]]:
    """All Conv2d/Linear descendants, in registration (≈ dataflow) order."""
    from repro.nn.modules import Linear  # local import avoids cycle at module load

    return [
        (name, module)
        for name, module in root.named_modules()
        if isinstance(module, (Conv2d, Linear))
    ]
