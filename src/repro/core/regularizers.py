"""Activation regularizers — the heart of Neuron Convergence (Sec. 3.1).

The paper's Eq. 3 defines, for each inter-layer signal ``o`` and target bit
width ``M`` (threshold ``T = 2^(M−1)``):

    rg(o) = α·|o|                         if |o| <  T
    rg(o) = (|o| − T) + α·|o|             if |o| >= T

i.e. a gentle L1 pull toward zero everywhere (sparsity) plus a strong
linear penalty on anything escaping the fixed range (uniform across all
layers).  Figure 3 contrasts this with plain L1 and truncated L1; those
baselines are implemented here too so Fig. 4's four-way comparison can be
regenerated.

Each penalty has two forms:

- a differentiable :class:`~repro.nn.tensor.Tensor` version used inside the
  training loss, and
- a plain-numpy ``*_curve`` version used to draw the Figure 3 shapes.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

DEFAULT_ALPHA = 0.1  # the paper sets α = 0.1 "empirically"


def convergence_threshold(bits: int) -> float:
    """The uniform range bound ``T = 2^(M−1)`` for M-bit signals."""
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    return float(2 ** (bits - 1))


# ---------------------------------------------------------------------------
# Differentiable penalties (sum over all elements)
# ---------------------------------------------------------------------------

def neuron_convergence_penalty(
    signals: Tensor, bits: int, alpha: float = DEFAULT_ALPHA
) -> Tensor:
    """Eq. 3 summed over a whole activation tensor.

    ``rg(o) = α|o| + max(|o| − 2^(M−1), 0)``.
    """
    threshold = convergence_threshold(bits)
    magnitude = signals.abs()
    overflow = F.relu(magnitude - threshold)
    return (magnitude * alpha + overflow).sum()


def l1_penalty(signals: Tensor) -> Tensor:
    """Plain L1: ``|o|`` summed (Fig. 3b / Fig. 4b baseline)."""
    return signals.abs().sum()


def truncated_l1_penalty(signals: Tensor, bits: int) -> Tensor:
    """Truncated L1: ``min(|o|, T)`` summed (Fig. 3c / Fig. 4c baseline).

    Gradient is 1 below the threshold, 0 above — it restricts range pressure
    to small signals, which is why it fails to contain the distribution.
    """
    threshold = convergence_threshold(bits)
    return signals.abs().clip(0.0, threshold).sum()


def zero_penalty(signals: Tensor) -> Tensor:
    """No regularization (Fig. 3a / Fig. 4a baseline)."""
    return Tensor(np.zeros(()))


PENALTIES: Dict[str, Callable[..., Tensor]] = {
    "none": zero_penalty,
    "l1": l1_penalty,
    "truncated_l1": truncated_l1_penalty,
    "proposed": neuron_convergence_penalty,
}


def make_penalty(name: str, bits: int, alpha: float = DEFAULT_ALPHA) -> Callable[[Tensor], Tensor]:
    """Return ``penalty(signals) -> Tensor`` for one of the four Fig. 3 forms."""
    if name == "none":
        return zero_penalty
    if name == "l1":
        return l1_penalty
    if name == "truncated_l1":
        return lambda signals: truncated_l1_penalty(signals, bits)
    if name == "proposed":
        return lambda signals: neuron_convergence_penalty(signals, bits, alpha)
    raise KeyError(f"unknown penalty {name!r}; available: {sorted(PENALTIES)}")


# ---------------------------------------------------------------------------
# Analytic curves for Figure 3
# ---------------------------------------------------------------------------

def regularizer_curve(
    name: str, values: np.ndarray, bits: int = 2, alpha: float = DEFAULT_ALPHA
) -> np.ndarray:
    """Pointwise penalty value of each Fig. 3 form (for plotting/printing)."""
    magnitude = np.abs(values)
    threshold = convergence_threshold(bits)
    if name == "none":
        return np.zeros_like(magnitude)
    if name == "l1":
        return magnitude
    if name == "truncated_l1":
        return np.minimum(magnitude, threshold)
    if name == "proposed":
        return alpha * magnitude + np.maximum(magnitude - threshold, 0.0)
    raise KeyError(f"unknown penalty {name!r}; available: {sorted(PENALTIES)}")
