"""Snap per-layer scales onto the power-of-two grid (MINT-style).

The integer fast path requantizes each layer with one folded multiply,
``counts = clip(⌊q_scale·acc + q_offset⌋, 0, top)`` where

    q_scale = scale · gain_out / (2^N · gain_in)

(``scale`` the layer's weight-clustering scale, ``gain_in``/``gain_out``
the surrounding signal-quantizer gains).  Following MINT, a multiplier is
unnecessary when ``q_scale = 2^-shift``: the requantize becomes a pure
arithmetic right shift (:func:`repro.runtime.plan.shift_requantize`), the
MAC datapath needs no multiplier at all, and :mod:`repro.snc.cost` credits
the energy difference.

:func:`snap_scales_pow2` rewrites each fast-path layer's *weight scale* so
its ``q_scale`` lands exactly on that grid — signal gains are left alone,
preserving the paper's network-wide uniform (M, gain) constraint (QS210).
Weights are re-assigned onto the snapped grid, which perturbs them by at
most half a quantization step per weight; the graph executor of the
snapped module is the reference that ``engine_shift`` conformance checks
against (see ``docs/performance.md`` for what that does and does not
guarantee).

The transform is two-phase (validate everything, then mutate) and
idempotent: a module already on the grid is returned unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.modules import InputQuantizer, QuantizedActivation
from repro.core.weight_clustering import _assign, _stamp_grid
from repro.nn.modules import Conv2d, Linear, Module

#: Largest provable arithmetic shift for a 64-bit accumulator (QS221).
MAX_SHIFT = 62

#: Log-domain tolerance for "already on the grid" (matches the plan's
#: ``_init_shift`` acceptance test).
GRID_TOLERANCE = 1e-9

_STOP_TYPES = (InputQuantizer, QuantizedActivation, Conv2d, Linear)


@dataclass
class SnapRecord:
    """One layer's snap: what moved, by how much."""

    layer: str
    old_scale: float
    new_scale: float
    shift: int
    max_weight_delta: float
    snapped: bool  # False when the layer was already on the grid


def _ordered_leaves(root: Module) -> List[Module]:
    """Module leaves in forward order, stopping at the types we reason about.

    ``QuantizedActivation`` wraps an inner ReLU child, so the stop-set
    keeps it whole; containers recurse; unrelated leaves pass through
    (they carry no scales).
    """
    found: List[Module] = []

    def visit(m: Module) -> None:
        if isinstance(m, _STOP_TYPES):
            found.append(m)
            return
        children = list(m._modules.values())
        if not children:
            found.append(m)
            return
        for child in children:
            visit(child)

    visit(root)
    return found


def snap_scales_pow2(module: Module) -> List[SnapRecord]:
    """Snap every integer-fast-path layer of ``module`` onto the pow2 grid.

    Walks the module in forward order tracking the incoming signal gain
    (input quantizer, then each enabled M-bit activation quantizer).  For
    each grid-stamped ``Conv2d``/``Linear`` immediately followed by an
    enabled quantizer, the weight scale is replaced by the unique value
    that makes ``q_scale`` exactly ``2^-shift``, and the weights are
    re-assigned onto the new grid.

    Returns one :class:`SnapRecord` per fast-path layer (``snapped=False``
    for layers already on the grid).  Raises :class:`ValueError` — before
    mutating anything — when any layer's nearest shift falls outside
    ``[0, 62]``, since a negative shift would need a left-shifting
    requantize the engine does not implement.
    """
    leaves = _ordered_leaves(module)
    gain_in: Optional[float] = None
    todo: List[tuple] = []
    records: List[SnapRecord] = []
    problems: List[str] = []

    for i, m in enumerate(leaves):
        if isinstance(m, InputQuantizer):
            gain_in = float(m.gain)
        elif isinstance(m, QuantizedActivation):
            if m.enabled:
                gain_in = float(m.gain)
        elif isinstance(m, (Conv2d, Linear)):
            scale = getattr(m, "_grid_scale", None)
            bits = getattr(m, "_grid_bits", None)
            nxt = leaves[i + 1] if i + 1 < len(leaves) else None
            if (
                scale is None or bits is None or scale <= 0
                or gain_in is None
                or not isinstance(nxt, QuantizedActivation)
                or not nxt.enabled
            ):
                continue
            name = f"{type(m).__name__}[{i}]"
            gain_out = float(nxt.gain)
            q_scale = scale * gain_out / (2 ** bits * gain_in)
            exact = -math.log2(q_scale)
            shift = round(exact)
            if not 0 <= shift <= MAX_SHIFT:
                problems.append(
                    f"{name}: requantize scale {q_scale:.6g} needs shift "
                    f"{shift}, outside [0, {MAX_SHIFT}]"
                )
                continue
            if abs(exact - shift) <= GRID_TOLERANCE:
                records.append(SnapRecord(
                    layer=name, old_scale=float(scale), new_scale=float(scale),
                    shift=shift, max_weight_delta=0.0, snapped=False,
                ))
                continue
            new_scale = (2.0 ** -shift) * (2 ** bits) * gain_in / gain_out
            todo.append((m, name, float(scale), float(new_scale), int(bits), shift))

    if problems:
        raise ValueError(
            "cannot snap scales to the power-of-two grid: " + "; ".join(problems)
        )

    for m, name, old_scale, new_scale, bits, shift in todo:
        weights = m.weight.data
        codes = _assign(weights, bits, new_scale)
        snapped = new_scale * codes / float(2 ** bits)
        delta = float(np.max(np.abs(snapped - weights), initial=0.0))
        weights[...] = snapped
        _stamp_grid(m, new_scale, bits)
        records.append(SnapRecord(
            layer=name, old_scale=old_scale, new_scale=new_scale,
            shift=shift, max_weight_delta=delta, snapped=True,
        ))
    return records
