"""Training loop with optional quantization-aware regularization.

One :class:`Trainer` covers both arms of every table:

- *traditional training* (``penalty="none"``) — the "w/o" rows, and
- *the proposed training* (``penalty="proposed"`` with bits M) — the "w/"
  rows, implementing the Eq. 2 objective
  ``E(W) = E_D(W) + λ·R(W) + Σ_i λ_i·Rg(O^i)``
  (weight decay supplies λ·R(W); Neuron Convergence supplies the Rg term).

An optional *fine-tuning* mode trains through the quantizers with
straight-through estimators — an extension beyond the paper's post-training
flow, used by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.analysis.metrics import evaluate_accuracy
from repro.core.neuron_convergence import NeuronConvergence
from repro.nn.data import DataLoader, Dataset
from repro.nn.losses import cross_entropy
from repro.nn.modules import Module
from repro.nn.optim import SGD, Adam, CosineLR
from repro.nn.tensor import Tensor


@dataclass
class TrainerConfig:
    """Hyper-parameters for one training run.

    ``penalty="none"`` disables the regularizer entirely (traditional
    training); any other value builds a :class:`NeuronConvergence` with the
    given ``bits`` / ``alpha`` / ``strength``.
    """

    epochs: int = 10
    batch_size: int = 32
    lr: float = 2e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9
    weight_decay: float = 1e-5
    cosine_schedule: bool = True
    # α = 0.1 is the paper's Eq. 3 value with its (unpublished) per-layer
    # λ_i; our normalization folds λ_i into `strength`, and the tuned
    # (strength, alpha) pair below reproduces the paper's containment
    # behaviour across all three model families (see DESIGN.md §6).
    penalty: str = "none"
    bits: int = 4
    alpha: float = 0.01
    strength: float = 1e-2
    seed: int = 0
    verbose: bool = False
    # Early stopping (requires an eval set): stop when eval accuracy has
    # not improved for `patience` epochs; 0 disables.
    patience: int = 0
    # Keep the best-eval-accuracy weights instead of the last epoch's.
    restore_best: bool = False

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {self.optimizer!r}")


@dataclass
class TrainingHistory:
    """Per-epoch traces of one run."""

    losses: List[float] = field(default_factory=list)
    penalties: List[float] = field(default_factory=list)
    eval_accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.eval_accuracies[-1] if self.eval_accuracies else float("nan")


class Trainer:
    """Train a model under :class:`TrainerConfig`."""

    def __init__(self, config: TrainerConfig) -> None:
        self.config = config

    def _build_optimizer(self, model: Module):
        cfg = self.config
        if cfg.optimizer == "adam":
            return Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        return SGD(
            model.parameters(),
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
        )

    def fit(
        self,
        model: Module,
        train_set: Dataset,
        eval_set: Optional[Dataset] = None,
    ) -> TrainingHistory:
        """Run the configured number of epochs; returns per-epoch traces."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        loader = DataLoader(train_set, batch_size=cfg.batch_size, shuffle=True, rng=rng)
        optimizer = self._build_optimizer(model)
        schedule = CosineLR(optimizer, cfg.epochs) if cfg.cosine_schedule else None
        history = TrainingHistory()

        regularizer: Optional[NeuronConvergence] = None
        if cfg.penalty != "none":
            regularizer = NeuronConvergence(
                model,
                bits=cfg.bits,
                strength=cfg.strength,
                alpha=cfg.alpha,
                penalty=cfg.penalty,
            )
            regularizer.tap.attach()

        best_accuracy = -1.0
        best_state = None
        epochs_since_best = 0
        try:
            model.train()
            for epoch in range(cfg.epochs):
                epoch_loss = 0.0
                epoch_penalty = 0.0
                seen = 0
                for images, labels in loader:
                    logits = model(Tensor(images))
                    loss = cross_entropy(logits, labels)
                    if regularizer is not None:
                        reg_term = regularizer.term()
                        epoch_penalty += reg_term.item() * len(labels)
                        loss = loss + reg_term
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
                    epoch_loss += loss.item() * len(labels)
                    seen += len(labels)
                if schedule is not None:
                    schedule.step()
                history.losses.append(epoch_loss / seen)
                history.penalties.append(epoch_penalty / seen)
                if eval_set is not None:
                    if regularizer is not None:
                        regularizer.tap.clear()
                    accuracy = evaluate_accuracy(model, eval_set)
                    if regularizer is not None:
                        regularizer.tap.clear()
                    history.eval_accuracies.append(accuracy)
                    model.train()
                    if accuracy > best_accuracy:
                        best_accuracy = accuracy
                        epochs_since_best = 0
                        if cfg.restore_best:
                            best_state = model.state_dict()
                    else:
                        epochs_since_best += 1
                if cfg.verbose:
                    acc = history.eval_accuracies[-1] if eval_set is not None else float("nan")
                    print(
                        f"epoch {epoch + 1}/{cfg.epochs}: "
                        f"loss={history.losses[-1]:.4f} "
                        f"penalty={history.penalties[-1]:.4f} acc={acc:.3f}"
                    )
                if cfg.patience and eval_set is not None and epochs_since_best >= cfg.patience:
                    break
        finally:
            if regularizer is not None:
                regularizer.tap.detach()
        if cfg.restore_best and best_state is not None:
            model.load_state_dict(best_state)
        return history


def train_model(
    model: Module,
    train_set: Dataset,
    eval_set: Optional[Dataset] = None,
    **config_kwargs,
) -> TrainingHistory:
    """One-call convenience: build a :class:`TrainerConfig` and fit."""
    return Trainer(TrainerConfig(**config_kwargs)).fit(model, train_set, eval_set)
