"""End-to-end quantization pipeline: train → quantize → evaluate.

One :class:`QuantizationPipeline` run reproduces one cell group of the
paper's Table 4 for a chosen network and bit widths:

1. train a *traditional* model (no regularizer) — its fp32 accuracy is the
   "Ideal Acc." reference, and its quantized accuracy is the "w/o" arm;
2. train a *proposed* model with Neuron Convergence at M bits;
3. deploy both with M-bit fixed-integer signals and N-bit fixed-point
   weights (naive grid for the traditional model, Weight Clustering for
   the proposed one);
4. evaluate everything and report with/without/recovered/drop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.analysis.metrics import QuantizationOutcome, evaluate_accuracy
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.qat import Trainer, TrainerConfig
from repro.models.registry import build_model
from repro.nn.data import Dataset
from repro.nn.modules import Module

ModelSource = Union[str, Callable[[], Module]]


@dataclass
class PipelineConfig:
    """Bit widths plus training hyper-parameters for one pipeline run."""

    signal_bits: Optional[int] = 4
    weight_bits: Optional[int] = 4
    epochs: int = 10
    batch_size: int = 32
    lr: float = 2e-3
    weight_decay: float = 1e-5
    alpha: float = 0.01
    strength: float = 1e-2
    clustering_scope: str = "per_layer"
    width_multiplier: float = 1.0
    seed: int = 0
    verbose: bool = False


@dataclass
class PipelineReport:
    """All accuracies from one run (percentages, like the paper's tables)."""

    model_name: str
    signal_bits: Optional[int]
    weight_bits: Optional[int]
    ideal_accuracy: float
    without_accuracy: float
    with_accuracy: float
    proposed_fp32_accuracy: float
    info: dict = field(default_factory=dict)

    @property
    def outcome(self) -> QuantizationOutcome:
        bits = self.signal_bits if self.signal_bits is not None else self.weight_bits
        return QuantizationOutcome(
            model=self.model_name,
            bits=bits if bits is not None else 32,
            accuracy_without=self.without_accuracy,
            accuracy_with=self.with_accuracy,
            ideal=self.ideal_accuracy,
        )

    def summary(self) -> str:
        o = self.outcome
        return (
            f"{self.model_name} (M={self.signal_bits}, N={self.weight_bits}): "
            f"ideal={o.ideal:.2f}%  w/o={o.accuracy_without:.2f}%  "
            f"w/={o.accuracy_with:.2f}%  recovered={o.recovered:.2f}%  "
            f"drop={o.drop:.2f}%"
        )


class QuantizationPipeline:
    """Run the full with/without comparison for one configuration."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def _make_model(self, source: ModelSource) -> Module:
        if callable(source):
            return source()
        return build_model(
            source,
            width_multiplier=self.config.width_multiplier,
            rng=np.random.default_rng(self.config.seed),
        )

    def _trainer(self, penalty: str) -> Trainer:
        cfg = self.config
        bits = cfg.signal_bits if cfg.signal_bits is not None else 4
        return Trainer(
            TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                weight_decay=cfg.weight_decay,
                penalty=penalty,
                bits=bits,
                alpha=cfg.alpha,
                strength=cfg.strength,
                seed=cfg.seed,
                verbose=cfg.verbose,
            )
        )

    def run(
        self,
        model_source: ModelSource,
        train_set: Dataset,
        test_set: Dataset,
        model_name: Optional[str] = None,
    ) -> PipelineReport:
        """Train both arms, deploy, and measure (slow: two trainings)."""
        cfg = self.config
        name = model_name or (model_source if isinstance(model_source, str) else "model")

        baseline = self._make_model(model_source)
        self._trainer("none").fit(baseline, train_set)
        ideal = evaluate_accuracy(baseline, test_set) * 100.0

        proposed = self._make_model(model_source)
        self._trainer("proposed").fit(proposed, train_set)
        proposed_fp32 = evaluate_accuracy(proposed, test_set) * 100.0

        without_model, _ = deploy_model(
            baseline,
            DeploymentConfig(
                signal_bits=cfg.signal_bits,
                weight_bits=cfg.weight_bits,
                weight_mode="naive" if cfg.weight_bits is not None else "none",
            ),
        )
        with_model, info = deploy_model(
            proposed,
            DeploymentConfig(
                signal_bits=cfg.signal_bits,
                weight_bits=cfg.weight_bits,
                weight_mode="clustered" if cfg.weight_bits is not None else "none",
                clustering_scope=cfg.clustering_scope,
            ),
        )
        without_accuracy = evaluate_accuracy(without_model, test_set) * 100.0
        with_accuracy = evaluate_accuracy(with_model, test_set) * 100.0

        return PipelineReport(
            model_name=name,
            signal_bits=cfg.signal_bits,
            weight_bits=cfg.weight_bits,
            ideal_accuracy=ideal,
            without_accuracy=without_accuracy,
            with_accuracy=with_accuracy,
            proposed_fp32_accuracy=proposed_fp32,
            info={
                "quantized_activations": info.quantized_activations,
                "folded_batchnorms": info.folded_batchnorms,
            },
        )
