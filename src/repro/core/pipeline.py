"""End-to-end quantization pipeline: train → quantize → evaluate.

One :class:`QuantizationPipeline` run reproduces one cell group of the
paper's Table 4 for a chosen network and bit widths:

1. train a *traditional* model (no regularizer) — its fp32 accuracy is the
   "Ideal Acc." reference, and its quantized accuracy is the "w/o" arm;
2. train a *proposed* model with Neuron Convergence at M bits;
3. deploy both with M-bit fixed-integer signals and N-bit fixed-point
   weights (naive grid for the traditional model, Weight Clustering for
   the proposed one);
4. evaluate everything and report with/without/recovered/drop.

The stages execute as a :class:`~repro.flow.Pipeline` on a
:class:`~repro.flow.FlowRunner`: by default an ephemeral in-memory run
(exactly the old monolithic behaviour), but pass a runner with a
:class:`~repro.flow.CheckpointStore` and a run that died after the
expensive trainings resumes from them instead of re-training — each
step's checkpoint key covers the config *and* a fingerprint of the
datasets, so stale checkpoints can never be mistaken for current ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.analysis.metrics import QuantizationOutcome, evaluate_accuracy
from repro.core.deployment import DeploymentConfig, deploy_model
from repro.core.qat import Trainer, TrainerConfig
from repro.flow.runner import FlowRunner, Pipeline
from repro.models.registry import build_model
from repro.nn.data import Dataset
from repro.nn.modules import Module

ModelSource = Union[str, Callable[[], Module]]


def dataset_fingerprint(dataset: Dataset) -> str:
    """A short content hash of a dataset (images + labels).

    Folded into every checkpoint key so a pipeline resumed against
    different data recomputes instead of silently reusing stale steps.
    """
    hasher = hashlib.sha256()
    hasher.update(np.ascontiguousarray(dataset.images).tobytes())
    hasher.update(np.ascontiguousarray(dataset.labels).tobytes())
    return hasher.hexdigest()[:16]


@dataclass
class PipelineConfig:
    """Bit widths plus training hyper-parameters for one pipeline run."""

    signal_bits: Optional[int] = 4
    weight_bits: Optional[int] = 4
    epochs: int = 10
    batch_size: int = 32
    lr: float = 2e-3
    weight_decay: float = 1e-5
    alpha: float = 0.01
    strength: float = 1e-2
    clustering_scope: str = "per_layer"
    width_multiplier: float = 1.0
    seed: int = 0
    verbose: bool = False


@dataclass
class PipelineReport:
    """All accuracies from one run (percentages, like the paper's tables)."""

    model_name: str
    signal_bits: Optional[int]
    weight_bits: Optional[int]
    ideal_accuracy: float
    without_accuracy: float
    with_accuracy: float
    proposed_fp32_accuracy: float
    info: dict = field(default_factory=dict)

    @property
    def outcome(self) -> QuantizationOutcome:
        bits = self.signal_bits if self.signal_bits is not None else self.weight_bits
        return QuantizationOutcome(
            model=self.model_name,
            bits=bits if bits is not None else 32,
            accuracy_without=self.without_accuracy,
            accuracy_with=self.with_accuracy,
            ideal=self.ideal_accuracy,
        )

    def summary(self) -> str:
        o = self.outcome
        return (
            f"{self.model_name} (M={self.signal_bits}, N={self.weight_bits}): "
            f"ideal={o.ideal:.2f}%  w/o={o.accuracy_without:.2f}%  "
            f"w/={o.accuracy_with:.2f}%  recovered={o.recovered:.2f}%  "
            f"drop={o.drop:.2f}%"
        )


class QuantizationPipeline:
    """Run the full with/without comparison for one configuration."""

    def __init__(self, config: PipelineConfig) -> None:
        self.config = config

    def _make_model(self, source: ModelSource) -> Module:
        if callable(source):
            return source()
        return build_model(
            source,
            width_multiplier=self.config.width_multiplier,
            rng=np.random.default_rng(self.config.seed),
        )

    def _trainer(self, penalty: str) -> Trainer:
        cfg = self.config
        bits = cfg.signal_bits if cfg.signal_bits is not None else 4
        return Trainer(
            TrainerConfig(
                epochs=cfg.epochs,
                batch_size=cfg.batch_size,
                lr=cfg.lr,
                weight_decay=cfg.weight_decay,
                penalty=penalty,
                bits=bits,
                alpha=cfg.alpha,
                strength=cfg.strength,
                seed=cfg.seed,
                verbose=cfg.verbose,
            )
        )

    def build_pipeline(
        self,
        model_source: ModelSource,
        train_set: Dataset,
        test_set: Dataset,
        model_name: Optional[str] = None,
    ) -> Pipeline:
        """The run as a checkpointable DAG (see module docstring).

        Steps: two trainings (the expensive ones), two deployments, four
        evaluations.  Every step is deterministic given its config — each
        builds its own seeded RNGs — so a resumed run is bit-exact with
        an uninterrupted one.
        """
        cfg = self.config
        name = model_name or (model_source if isinstance(model_source, str) else "model")
        base_config = {
            "model": name,
            "signal_bits": cfg.signal_bits,
            "weight_bits": cfg.weight_bits,
            "epochs": cfg.epochs,
            "batch_size": cfg.batch_size,
            "lr": cfg.lr,
            "weight_decay": cfg.weight_decay,
            "alpha": cfg.alpha,
            "strength": cfg.strength,
            "clustering_scope": cfg.clustering_scope,
            "width_multiplier": cfg.width_multiplier,
            "seed": cfg.seed,
            "train_data": dataset_fingerprint(train_set),
            "test_data": dataset_fingerprint(test_set),
        }

        def train(penalty: str) -> Module:
            model = self._make_model(model_source)
            self._trainer(penalty).fit(model, train_set)
            return model

        def accuracy_pct(model: Module) -> float:
            return evaluate_accuracy(model, test_set) * 100.0

        def deploy_without(baseline: Module) -> Module:
            deployed, _ = deploy_model(
                baseline,
                DeploymentConfig(
                    signal_bits=cfg.signal_bits,
                    weight_bits=cfg.weight_bits,
                    weight_mode="naive" if cfg.weight_bits is not None else "none",
                ),
            )
            return deployed

        def deploy_with(proposed: Module) -> tuple:
            deployed, info = deploy_model(
                proposed,
                DeploymentConfig(
                    signal_bits=cfg.signal_bits,
                    weight_bits=cfg.weight_bits,
                    weight_mode="clustered" if cfg.weight_bits is not None else "none",
                    clustering_scope=cfg.clustering_scope,
                ),
            )
            return deployed, {
                "quantized_activations": info.quantized_activations,
                "folded_batchnorms": info.folded_batchnorms,
            }

        pipe = Pipeline(f"quantization/{name}")
        pipe.step("train_baseline", lambda: train("none"),
                  config={**base_config, "penalty": "none"})
        pipe.step("train_proposed", lambda: train("proposed"),
                  config={**base_config, "penalty": "proposed"})
        pipe.step("eval_ideal", accuracy_pct, inputs=("train_baseline",),
                  config=base_config)
        pipe.step("eval_proposed_fp32", accuracy_pct, inputs=("train_proposed",),
                  config=base_config)
        pipe.step("deploy_without", deploy_without, inputs=("train_baseline",),
                  config=base_config)
        pipe.step("deploy_with", deploy_with, inputs=("train_proposed",),
                  config=base_config)
        pipe.step("eval_without", accuracy_pct, inputs=("deploy_without",),
                  config=base_config)
        pipe.step("eval_with", lambda pair: accuracy_pct(pair[0]),
                  inputs=("deploy_with",), config=base_config)
        return pipe

    def run(
        self,
        model_source: ModelSource,
        train_set: Dataset,
        test_set: Dataset,
        model_name: Optional[str] = None,
        runner: Optional[FlowRunner] = None,
    ) -> PipelineReport:
        """Train both arms, deploy, and measure (slow: two trainings).

        With the default ephemeral runner this is the classic monolithic
        run; pass a :class:`~repro.flow.FlowRunner` with a checkpoint
        store to get resume/retry semantics (``repro run quantization``
        does exactly that).
        """
        name = model_name or (model_source if isinstance(model_source, str) else "model")
        pipe = self.build_pipeline(model_source, train_set, test_set, model_name=name)
        result = (runner or FlowRunner()).run(pipe)
        return self.report_from(result, name)

    def report_from(self, result, model_name: str) -> PipelineReport:
        """Assemble the :class:`PipelineReport` from a finished run.

        ``result`` is the :class:`~repro.flow.RunResult` of a pipeline
        built by :meth:`build_pipeline` (the ``repro run quantization``
        CLI uses this to report on externally-driven runs).
        """
        cfg = self.config
        _, info = result.output("deploy_with")
        return PipelineReport(
            model_name=model_name,
            signal_bits=cfg.signal_bits,
            weight_bits=cfg.weight_bits,
            ideal_accuracy=result.output("eval_ideal"),
            without_accuracy=result.output("eval_without"),
            with_accuracy=result.output("eval_with"),
            proposed_fp32_accuracy=result.output("eval_proposed_fp32"),
            info=info,
        )
