"""Command-line interface: regenerate any of the paper's tables/figures.

Examples::

    python -m repro.cli table5
    python -m repro.cli table2 --models lenet --bits 4 3 --fast
    python -m repro.cli fig1a
    python -m repro.cli healthcheck --fault-rate 0.01 --remediate --fast
    python -m repro.cli list

Training-backed commands cache trained models under ``.bench_cache`` (same
cache the benchmark harness uses), so repeated invocations are fast.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis import experiments as E
from repro.analysis.tables import render_dict_table, render_histogram

COMMANDS = (
    "table1", "table2", "table3", "table4", "table5",
    "fig1a", "fig1b", "fig3", "fig4",
    "breakdown", "programming", "irdrop", "healthcheck", "plan", "check",
    "serve-bench", "stream-bench", "metrics", "run", "list",
)


def run_flow(args: argparse.Namespace) -> tuple:
    """The ``repro run`` command: execute a named pipeline on the DAG runner.

    ``repro run <pipeline>`` builds one of the named pipelines
    (:data:`repro.flow.pipelines.PIPELINES`), attaches a checkpoint store
    under ``--run-dir`` (resume is the default — re-running after a crash
    skips completed steps), a retry policy (``--retries``), and a JSONL
    failsink (``--failsink``).  Returns ``(output, exit_code)`` — nonzero
    when a step exhausted its attempts.
    """
    from repro.flow import CheckpointStore, Failsink, FlowRunner, RetryPolicy, StepFailed
    from repro.flow.pipelines import PIPELINES, build_named_pipeline

    if args.target is None:
        return (
            "repro run: name a pipeline: " + ", ".join(sorted(PIPELINES)),
            2,
        )
    if args.retries < 0:
        raise SystemExit(f"repro run: --retries must be >= 0, got {args.retries}")
    try:
        pipeline, summarize = build_named_pipeline(
            args.target, fast=args.fast, seed=args.seed
        )
    except ValueError as error:
        return f"repro run: {error}", 2

    run_dir = args.run_dir or os.path.join(".flow_runs", args.target)
    store = CheckpointStore(run_dir)
    failsink = Failsink(path=args.failsink or store.failsink_path())
    runner = FlowRunner(
        store=store,
        retry=RetryPolicy(max_attempts=args.retries + 1),
        failsink=failsink,
        seed=args.seed,
    )
    force: object = False
    if args.force is not None:
        force = True if not args.force else set(args.force)
    failed_step = None
    try:
        result = runner.run(pipeline, resume=not args.no_resume, force=force)
    except StepFailed as error:
        failed_step = error
        result = None
    finally:
        failsink.close()

    lines = [f"pipeline {pipeline.name} (run dir: {run_dir})"]
    if result is not None:
        rows = [
            {"step": r.name, "status": r.status, "attempts": r.attempts,
             "duration_s": round(r.duration_s, 3)}
            for r in result.steps.values()
        ]
        lines.append(render_dict_table(
            rows, ["step", "status", "attempts", "duration_s"], title="steps"))
        lines.append(failsink.summary())
        lines.append("")
        lines.append(summarize(result))
        return "\n".join(lines), 0
    lines.append(f"FAILED: {failed_step}")
    lines.append(failsink.summary())
    lines.append("completed steps keep their checkpoints; re-run to resume")
    return "\n".join(lines), 1


def run_metrics(args: argparse.Namespace) -> str:
    """The ``repro metrics`` command: exercise the stack and export telemetry.

    Deploys the first requested model, serves one instrumented batch
    through a :class:`~repro.serve.server.ModelServer`, measures spike
    activity on the hardware twin, and exports the populated registry as
    JSON (default) or Prometheus text.  The JSON export is round-tripped
    through :func:`repro.obs.from_json` before printing, so a successful
    run certifies the export parses and carries engine, serve, and snc
    families.
    """
    import numpy as np

    from repro import datasets
    from repro.core.deployment import DeploymentConfig, deploy_model, make_model_server
    from repro.models.registry import MODEL_DATASET, build_model
    from repro.obs import Telemetry, from_json, to_prometheus
    from repro.serve import ServeConfig
    from repro.snc.system import SpikingSystemConfig, build_spiking_system

    model_name = args.models[0]
    bits = args.bits[0]
    if not 1 <= bits <= 16:
        raise SystemExit(f"repro metrics: --bits must be in [1, 16], got {bits}")
    telemetry = Telemetry()
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[model_name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=32, test_size=8, seed=args.seed)
    images = train_set.images
    model = build_model(model_name, rng=np.random.default_rng(args.seed))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=bits, weight_bits=bits, input_bits=8),
        images[:16],
    )
    server = make_model_server(
        deployed,
        ServeConfig(workers=1, batch_size=8, max_wait_ms=0.5),
        warmup_images=images[:2],
        telemetry=telemetry,
    )
    try:
        server.submit(images[:8])
    finally:
        server.close()
    system = build_spiking_system(
        model,
        SpikingSystemConfig(signal_bits=bits, weight_bits=bits, seed=args.seed),
        images[:16],
    )
    system.attach_telemetry(telemetry)
    system.spike_statistics(images[:8])

    document = telemetry.export_json()
    snapshot = from_json(document)  # certifies the export round-trips
    names = snapshot.names()
    for prefix in ("engine_", "serve_", "snc_"):
        if not any(name.startswith(prefix) for name in names):
            raise SystemExit(
                f"repro metrics: export is missing {prefix}* families"
            )
    if args.format == "prometheus":
        output = to_prometheus(snapshot)
    else:
        output = document
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        return (
            f"wrote {len(names)} metric families "
            f"({args.format}) to {args.output}"
        )
    return output


def run_serve_bench(args: argparse.Namespace) -> str:
    """The ``repro serve-bench`` command: micro-benchmark the serving layer.

    Deploys a quantized model (random weights — serving throughput does
    not depend on training), then offers a deterministic closed-loop
    load to a :class:`~repro.serve.server.ModelServer` at each requested
    worker count and reports throughput and latency percentiles next to
    the single-caller engine and graph-executor baselines.
    """
    import time as _time

    import numpy as np

    from repro import datasets
    from repro.core.deployment import (
        DeploymentConfig, deploy_model, make_inference_engine, make_model_server,
    )
    from repro.models.registry import MODEL_DATASET, build_model
    from repro.nn.tensor import Tensor, no_grad
    from repro.obs import Telemetry, to_prometheus
    from repro.serve import LoadGenConfig, ServeConfig, run_load

    telemetry = Telemetry() if args.metrics else None
    if args.max_wait_ms < 0:
        raise SystemExit(
            f"repro serve-bench: --max-wait-ms must be >= 0, got {args.max_wait_ms}"
        )
    if any(w < 1 for w in args.workers):
        raise SystemExit(
            f"repro serve-bench: --workers must all be >= 1, got {args.workers}"
        )
    model_name = args.models[0]
    bits = args.bits[0]
    if args.quick:
        pool_size, batch_size, clients, requests = 64, 32, 2, 6
        workers_list = [1, 2]
    else:
        pool_size, batch_size, clients, requests = 256, 128, 8, 24
        workers_list = sorted(set(args.workers))
    maker = (
        datasets.mnist_like
        if MODEL_DATASET[model_name] == "mnist-like"
        else datasets.cifar_like
    )
    train_set, _ = maker(train_size=pool_size, test_size=16, seed=args.seed)
    images = train_set.images
    model = build_model(model_name, rng=np.random.default_rng(args.seed))
    model.eval()
    deployed, _ = deploy_model(
        model,
        DeploymentConfig(signal_bits=bits, weight_bits=bits, input_bits=8),
        images[:32],
    )

    def timed_rows_per_s(fn, rows: int, reps: int = 5) -> float:
        fn()  # warm up
        times = []
        for _ in range(reps):
            start = _time.perf_counter()
            fn()
            times.append(_time.perf_counter() - start)
        return rows / float(np.median(times))

    batch = images[:batch_size]
    with no_grad():
        graph_rps = timed_rows_per_s(
            lambda: deployed(Tensor(np.asarray(batch, dtype=np.float64))).data,
            len(batch),
        )
    engine = make_inference_engine(
        deployed, telemetry=telemetry,
        int_path=args.int_path, int_kernels=args.int_kernels,
    )
    engine_rps = timed_rows_per_s(lambda: engine.run(batch), len(batch))

    load = LoadGenConfig(
        clients=clients, requests_per_client=requests,
        min_rows=max(batch_size // 8, 1), max_rows=max(batch_size // 2, 1),
        seed=args.seed,
    )
    rows = [
        {"config": "graph 1-caller", "rows_per_s": round(graph_rps, 1),
         "p50_ms": "-", "p99_ms": "-"},
        {"config": "engine 1-caller", "rows_per_s": round(engine_rps, 1),
         "p50_ms": "-", "p99_ms": "-"},
    ]
    pool = getattr(args, "pool", "thread")
    for workers in workers_list:
        server = make_model_server(
            deployed,
            ServeConfig(workers=workers, batch_size=batch_size,
                        max_wait_ms=args.max_wait_ms, pool=pool),
            warmup_images=images[:2],
            telemetry=telemetry,
        )
        try:
            report = run_load(server, images, load)
        finally:
            server.close()
        rows.append({
            "config": f"server {workers}w"
                      + (" (proc)" if pool == "process" else ""),
            "rows_per_s": round(report.throughput_rows_per_s, 1),
            "p50_ms": round(report.latency_ms(50), 2),
            "p99_ms": round(report.latency_ms(99), 2),
        })
    title = (
        f"Serving throughput — {model_name} M=N={bits}, batch {batch_size}, "
        f"max_wait {args.max_wait_ms}ms, {clients} closed-loop clients, "
        f"{pool} pool"
    )
    output = render_dict_table(rows, ["config", "rows_per_s", "p50_ms", "p99_ms"],
                               title=title)
    if telemetry is not None:
        output += "\n\n--- metrics (Prometheus text) ---\n"
        output += to_prometheus(telemetry.registry)
    return output


def run_stream_bench(args: argparse.Namespace) -> str:
    """The ``repro stream-bench`` command: benchmark event-stream serving.

    Builds a quantized spiking system (random weights — streaming
    throughput does not depend on training), statically verifies the
    windowing configuration (QT7xx), then offers deterministic
    event-stream traffic to a :class:`~repro.serve.stream.
    StreamingServer` at each requested worker count.  Reports served
    windows/s and whole-session latency percentiles next to the
    simulated SNC pipeline rate, and ends with a determinism audit:
    one stream served through a session must be bit-exact against a
    direct engine replay with the canonical window grouping.
    """
    import numpy as np

    from repro.check import check_temporal
    from repro.datasets.event_stream import generate_event_streams
    from repro.models.registry import build_model, get_spec
    from repro.serve.loadgen import StreamLoadConfig, run_stream_load
    from repro.serve.stream import StreamConfig, StreamingServer
    from repro.snc.system import SpikingSystemConfig, build_spiking_system
    from repro.snc.temporal import (
        TemporalConfig, replay_frames, stream_timing, stream_to_frames,
    )

    model_name = args.models[0]
    if model_name != "lenet":
        raise SystemExit(
            "repro stream-bench: event streams are single-channel 28x28; "
            "only lenet consumes them (got --models "
            f"{model_name})"
        )
    bits = args.bits[0]
    if any(w < 1 for w in args.workers):
        raise SystemExit(
            f"repro stream-bench: --workers must all be >= 1, got {args.workers}"
        )
    if args.quick:
        clients, per_client, workers_list = 2, 3, [1, 2]
    else:
        clients, per_client, workers_list = 4, 8, sorted(set(args.workers))
    temporal = TemporalConfig(signal_bits=bits)
    spec = get_spec(model_name)
    streams = generate_event_streams(6, seed=args.seed).streams

    gate = check_temporal(
        temporal.window_us, temporal.stride_us, temporal.signal_bits,
        input_bits=bits, streams=streams, spec=spec,
    )
    if gate.has_errors:
        raise SystemExit(gate.summary())

    model = build_model(model_name, rng=np.random.default_rng(args.seed))
    model.eval()
    system = build_spiking_system(
        model,
        SpikingSystemConfig(signal_bits=bits, weight_bits=bits,
                            input_bits=bits, signal_gain="auto"),
        stream_to_frames(streams[0], temporal),
    )

    timing = stream_timing(spec, temporal, total_windows=64)
    rows = [{
        "config": "simulated SNC pipeline",
        "windows_per_s": round(timing.windows_per_second, 1),
        "session_p50_ms": "-", "session_p99_ms": "-",
    }]
    load = StreamLoadConfig(clients=clients, streams_per_client=per_client,
                            seed=args.seed)
    for workers in workers_list:
        with StreamingServer.for_system(
            system, StreamConfig(temporal=temporal), workers=workers
        ) as streaming:
            report = run_stream_load(streaming, load)
        if report.streams_failed:
            raise SystemExit(
                f"repro stream-bench: {report.streams_failed} session(s) failed"
            )
        rows.append({
            "config": f"sessions {workers}w",
            "windows_per_s": round(report.windows_per_second, 1),
            "session_p50_ms": round(report.latency_ms(50), 2),
            "session_p99_ms": round(report.latency_ms(99), 2),
        })

    with StreamingServer.for_system(
        system, StreamConfig(temporal=temporal), workers=1
    ) as streaming:
        served = streaming.serve_stream(streams[0])
    expected = replay_frames(
        system.engine(), stream_to_frames(streams[0], temporal),
        temporal.batch_windows,
    )
    exact = bool(np.array_equal(served.per_window_logits, expected))
    title = (
        f"Streaming sessions — {model_name} M=N={bits}, window "
        f"{temporal.window_us}µs / stride {temporal.stride_us}µs, "
        f"batch_windows {temporal.batch_windows}, {clients} clients"
    )
    output = render_dict_table(
        rows, ["config", "windows_per_s", "session_p50_ms", "session_p99_ms"],
        title=title,
    )
    output += (
        "\nsession vs direct replay: "
        + ("bit-exact" if exact else "MISMATCH")
        + f" ({served.total_windows} windows)"
    )
    if not exact:
        raise SystemExit(output)
    return output


def _render_check_reports(reports: list, args: argparse.Namespace) -> tuple:
    """Render CheckReports as text or JSON; exit code 1 on any error."""
    import json

    failed = any(report.has_errors for report in reports)
    if args.json:
        output = json.dumps([report.to_dict() for report in reports], indent=2)
    else:
        output = "\n\n".join(report.summary(verbose=args.verbose) for report in reports)
        total_errors = sum(len(report.errors) for report in reports)
        output += (
            f"\n\nchecked {len(reports)} target(s): "
            + ("FAIL" if failed else "OK")
            + f" ({total_errors} error(s) total)"
        )
    return output, (1 if failed else 0)


def _check_plans(args: argparse.Namespace) -> tuple:
    """``repro check --plans``: statically verify compiled execution plans.

    Deploys each model at each bit width, traces a plan under every
    integer-path variant (fused int, shift, legacy kernels), and runs the
    PL6xx plan verifier on the compiled IR.  The engine's own post-trace
    gate is disabled here so findings surface in the report (and the exit
    code) instead of being silently swallowed by graph fallback.  Models
    the tracer cannot linearize (residual topologies) get an empty OK
    report noting the fallback — the graph executor needs no plan proof.
    """
    import numpy as np

    from repro.check import CheckReport
    from repro.check.plancheck import PlanCheckConfig, check_plan
    from repro.core.deployment import DeploymentConfig, deploy_model
    from repro.models.registry import build_model, get_spec
    from repro.runtime.engine import EngineConfig, InferenceEngine

    variants = (
        ("int", {"int_path": "auto", "int_kernels": "fused"}),
        ("shift", {"int_path": "shift", "int_kernels": "fused"}),
        ("legacy", {"int_path": "auto", "int_kernels": "legacy"}),
    )
    config = PlanCheckConfig(suppress=tuple(args.suppress))
    reports = []
    for model_name in args.models:
        spec = get_spec(model_name)
        rng = np.random.default_rng(args.seed)
        sample = rng.uniform(0.0, 1.0, size=(2, *spec.input_shape))
        for bits in args.bits:
            for variant, overrides in variants:
                target = f"{model_name} plan (M=N={bits}, {variant})"
                model = build_model(model_name, rng=np.random.default_rng(args.seed))
                model.eval()
                deployed, _ = deploy_model(
                    model,
                    DeploymentConfig(signal_bits=bits, weight_bits=bits,
                                     static_check="off"),
                )
                engine = InferenceEngine(
                    deployed, EngineConfig(plan_check=False, **overrides)
                )
                engine.run(sample)
                if engine.plan is None:
                    reports.append(CheckReport(
                        f"{target}: no traceable plan (graph fallback)"))
                else:
                    reports.append(check_plan(engine.plan, config=config,
                                              target=target))
    return _render_check_reports(reports, args)


def run_check(args: argparse.Namespace) -> tuple:
    """The ``repro check`` command: static deployment verification.

    Returns ``(output, exit_code)`` — nonzero when any checked target has
    an error-severity diagnostic, so CI can gate on it.  With ``--plans``
    the compiled execution plans are verified instead of the specs.
    """
    from repro.check import CheckConfig, check_module, check_spec
    from repro.models.registry import get_spec

    if args.plans:
        return _check_plans(args)

    config = CheckConfig(
        max_crossbars=args.max_crossbars,
        suppress=tuple(args.suppress),
    )
    reports = []
    for model_name in args.models:
        spec = get_spec(model_name)
        for bits in args.bits:
            reports.append(check_spec(spec, signal_bits=bits, weight_bits=bits,
                                      config=config))
        if args.deep:
            import numpy as np

            from repro.core.deployment import DeploymentConfig, deploy_model
            from repro.models.registry import build_model

            model = build_model(model_name, rng=np.random.default_rng(args.seed))
            model.eval()
            for bits in args.bits:
                deployed, _ = deploy_model(
                    model,
                    DeploymentConfig(signal_bits=bits, weight_bits=bits,
                                     static_check="off"),
                )
                reports.append(check_module(
                    deployed, input_shape=spec.input_shape, config=config,
                    target=f"{model_name} (deployed, M=N={bits})",
                ))
    return _render_check_reports(reports, args)


def _settings(args: argparse.Namespace) -> E.ExperimentSettings:
    return E.FAST_SETTINGS if args.fast else E.ExperimentSettings()


def _models(args: argparse.Namespace):
    return tuple(args.models)


def _bits(args: argparse.Namespace):
    return tuple(args.bits)


def run_command(args: argparse.Namespace) -> str:
    """Execute one CLI command and return its rendered output."""
    if args.command == "list":
        return "\n".join(COMMANDS[:-1])

    if args.command == "check":
        return run_check(args)[0]

    if args.command == "run":
        return run_flow(args)[0]

    if args.command == "serve-bench":
        return run_serve_bench(args)

    if args.command == "stream-bench":
        return run_stream_bench(args)

    if args.command == "metrics":
        return run_metrics(args)

    if args.command == "table1":
        rows = E.table1_ideal_accuracy(_settings(args))
        for row in rows:
            row["measured_ideal_acc"] = round(row["measured_ideal_acc"], 2)
        return render_dict_table(
            rows,
            ["model", "dataset", "conv_layers", "fc_layers",
             "paper_weights", "paper_ideal_acc", "measured_ideal_acc"],
            title="Table 1",
        )

    if args.command == "table2":
        outcomes = E.table2_neuron_convergence(_settings(args), _bits(args), _models(args))
        return render_dict_table(
            [o.row() for o in outcomes],
            ["model", "bits", "without", "with", "recovered", "drop", "ideal"],
            title="Table 2: Neuron Convergence",
        )

    if args.command == "table3":
        outcomes = E.table3_weight_clustering(_settings(args), _bits(args), _models(args))
        return render_dict_table(
            [o.row() for o in outcomes],
            ["model", "bits", "without", "with", "recovered", "drop", "ideal"],
            title="Table 3: Weight Clustering",
        )

    if args.command == "table4":
        results = E.table4_combined(_settings(args), _bits(args), _models(args))
        rows = []
        for model, entry in results.items():
            rows.append({"model": model, "bits": "dyn-8",
                         "with": round(entry["dynamic8"], 2),
                         "ideal": round(entry["ideal"], 2)})
            rows.extend(o.row() for o in entry["outcomes"])
        return render_dict_table(
            rows,
            ["model", "bits", "without", "with", "recovered", "drop", "ideal"],
            title="Table 4: combined quantization",
        )

    if args.command == "table5":
        rows = E.table5_system()
        for row in rows:
            for key in ("speed_mhz", "energy_uj", "area_mm2"):
                row[key] = round(row[key], 2)
            row["speedup"] = round(row["speedup"], 1)
            row["energy_saving"] = round(row["energy_saving"] * 100, 1)
            row["area_saving"] = round(row["area_saving"] * 100, 1)
        return render_dict_table(
            rows,
            ["model", "bits", "speed_mhz", "speedup", "energy_uj",
             "energy_saving", "area_mm2", "area_saving"],
            title="Table 5: SNC system evaluation",
        )

    if args.command == "fig1a":
        rows = E.fig1a_speed_vs_precision()
        for row in rows:
            row["speed_mhz"] = round(row["speed_mhz"], 2)
        return render_dict_table(rows, ["bits", "speed_mhz"], title="Fig 1a")

    if args.command == "fig1b":
        rows = E.fig1b_accuracy_loss(_settings(args))
        for row in rows:
            row["neuron_loss"] = round(row["neuron_loss"], 2)
            row["weight_loss"] = round(row["weight_loss"], 2)
        return render_dict_table(
            rows, ["bits", "neuron_loss", "weight_loss"], title="Fig 1b"
        )

    if args.command == "fig3":
        curves = E.fig3_regularizer_forms()
        rows = []
        o = curves["o"]
        for i in range(0, len(o), max(len(o) // 12, 1)):
            rows.append(
                {"o": round(float(o[i]), 2),
                 "l1": round(float(curves["l1"][i]), 3),
                 "truncated_l1": round(float(curves["truncated_l1"][i]), 3),
                 "proposed": round(float(curves["proposed"][i]), 3)}
            )
        return render_dict_table(
            rows, ["o", "l1", "truncated_l1", "proposed"], title="Fig 3 (M=2)"
        )

    if args.command == "fig4":
        distributions = E.fig4_signal_distributions(_settings(args))
        return "\n\n".join(
            render_histogram(values, bins=20, title=f"--- {name} ---")
            for name, values in distributions.items()
        )

    if args.command == "breakdown":
        from repro.models.registry import get_spec
        from repro.snc.cost import layer_breakdown

        rows = []
        for model in args.models:
            for entry in layer_breakdown(get_spec(model), args.bits[0]):
                entry = dict(entry)
                entry["model"] = model
                entry["energy_uj"] = round(entry["energy_uj"], 3)
                entry["area_mm2"] = round(entry["area_mm2"], 3)
                entry["output_events"] = round(entry["output_events"])
                rows.append(entry)
        return render_dict_table(
            rows,
            ["model", "index", "kind", "rows", "cols", "crossbars",
             "output_events", "energy_uj", "area_mm2"],
            title=f"Per-layer cost breakdown at M={args.bits[0]}",
        )

    if args.command == "programming":
        from repro.models.registry import get_spec
        from repro.snc.programming import programming_cost

        rows = []
        for model in args.models:
            for bits in args.bits:
                cost = programming_cost(get_spec(model), bits)
                rows.append(
                    {"model": model, "bits": bits,
                     "pulses_per_device": round(cost.pulses_per_device, 1),
                     "time_ms": round(cost.time_ms, 3),
                     "energy_uj": round(cost.energy_uj, 2)}
                )
        return render_dict_table(
            rows, ["model", "bits", "pulses_per_device", "time_ms", "energy_uj"],
            title="Programming (write) cost",
        )

    if args.command == "healthcheck":
        if not 0.0 <= args.fault_rate <= 1.0:
            raise SystemExit(
                f"repro healthcheck: --fault-rate must be in [0, 1], got {args.fault_rate}"
            )
        if args.variation < 0.0:
            raise SystemExit(
                f"repro healthcheck: --variation must be >= 0, got {args.variation}"
            )
        result = E.healthcheck_study(
            _settings(args),
            model=args.models[0],
            bits=args.bits[0],
            fault_rate=args.fault_rate,
            variation_sigma=args.variation,
            spare_fraction=args.spare_fraction,
            seed=args.seed,
            remediate=args.remediate,
        )
        lines = [
            f"Self-healing healthcheck — {result['model']} at "
            f"{result['bits']}-bit, fault rate {args.fault_rate:.1%}, "
            f"variation σ={args.variation:.2f}, seed {args.seed}",
            "",
        ]
        fault_report = result["fault_report"]
        if fault_report is not None:
            lines.append(
                f"Injected faults: {fault_report.stuck_sa0} SA0 + "
                f"{fault_report.stuck_sa1} SA1 of {fault_report.total_devices} devices"
            )
        lines.append(result["health"].summary())
        lines.append(
            f"Hardware accuracy {result['accuracy']:.1%} "
            f"(software twin {result['software_accuracy']:.1%})"
        )
        if args.remediate:
            lines.append("")
            lines.append(result["remediation"].summary())
            lines.append(result["health_after"].summary())
            lines.append(f"Hardware accuracy after repair: {result['accuracy_after']:.1%}")
        return "\n".join(lines)

    if args.command == "plan":
        import numpy as np

        from repro import datasets
        from repro.core.deployment import DeploymentConfig, deploy_model, make_inference_engine
        from repro.models.registry import MODEL_DATASET, build_model

        sections = []
        for model_name in args.models:
            maker = (
                datasets.mnist_like
                if MODEL_DATASET[model_name] == "mnist-like"
                else datasets.cifar_like
            )
            train_set, test_set = maker(train_size=64, test_size=16, seed=args.seed)
            model = build_model(model_name, rng=np.random.default_rng(args.seed))
            model.eval()
            deployed, _ = deploy_model(
                model,
                DeploymentConfig(
                    signal_bits=args.bits[0],
                    weight_bits=args.bits[0],
                    input_bits=8,
                    signal_gain=E.MODEL_SIGNAL_GAIN[model_name],
                ),
                train_set.images[:32],
            )
            engine = make_inference_engine(
                deployed, int_path=args.int_path, int_kernels=args.int_kernels,
            )
            engine.run(test_set.images[:8])
            stats = engine.runtime_stats()
            sections.append(
                f"=== {model_name} (M=N={args.bits[0]}, input 8-bit) ===\n"
                f"{engine.describe()}\n"
                f"backend={stats['backend']} "
                f"int_steps={stats.get('int_steps', 0)} "
                f"pool_bytes={stats.get('pool_bytes', 0)}"
            )
        return "\n\n".join(sections)

    if args.command == "irdrop":
        from repro.snc.irdrop import ir_drop_error_vs_size

        rows = [
            {"size": size, "relative_error_pct": round(error * 100, 3)}
            for size, error in ir_drop_error_vs_size([8, 16, 32, 64, 128])
        ]
        return render_dict_table(
            rows, ["size", "relative_error_pct"],
            title="Worst-corner IR-drop error vs crossbar size",
        )

    raise SystemExit(f"unknown command {args.command!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from Liu & Liu, DAC 2018.",
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument(
        "target", nargs="?", default=None,
        help="pipeline name for the run command (quantization, sweep, yield)",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="use the small/fast experiment settings (less faithful)",
    )
    parser.add_argument(
        "--models", nargs="+", default=["lenet", "alexnet", "resnet"],
        choices=["lenet", "alexnet", "resnet"],
    )
    parser.add_argument("--bits", nargs="+", type=int, default=[5, 4, 3])

    healthcheck = parser.add_argument_group("healthcheck options")
    healthcheck.add_argument(
        "--fault-rate", type=float, default=0.01,
        help="stuck-at fault rate to inject before probing (0 = pristine chip)",
    )
    healthcheck.add_argument(
        "--variation", type=float, default=0.0,
        help="memristor programming variation σ at deployment time",
    )
    healthcheck.add_argument(
        "--spare-fraction", type=float, default=0.1,
        help="fraction of crossbars provisioned as spares for remediation",
    )
    healthcheck.add_argument(
        "--seed", type=int, default=0,
        help="seed for fault injection, probing, and repair pulse noise",
    )
    healthcheck.add_argument(
        "--remediate", action="store_true",
        help="run the tiered repair ladder after diagnosis and re-probe",
    )

    engine = parser.add_argument_group("engine options (plan, serve-bench)")
    engine.add_argument(
        "--int-path", choices=["auto", "off", "shift"], default="auto",
        help="integer fast path: auto (multiply requantize), off (float "
             "plans), or shift (snap scales to the pow2 grid and requantize "
             "with arithmetic right shifts — multiplier-less MACs)",
    )
    engine.add_argument(
        "--int-kernels", choices=["fused", "legacy"], default="fused",
        help="integer conv/linear kernels: fused uint8 GEMM with the "
             "requantize epilogue, or the legacy per-step kernels",
    )

    serve = parser.add_argument_group("serve-bench / stream-bench options")
    serve.add_argument(
        "--workers", nargs="+", type=int, default=[1, 4],
        help="replica counts to benchmark (one server run per count)",
    )
    serve.add_argument(
        "--pool", choices=["thread", "process"], default="thread",
        help="replica pool backend for serve-bench: worker threads "
             "sharing the deployed module, or spawned worker processes "
             "fed through shared-memory tensors",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch formation wait budget",
    )
    serve.add_argument(
        "--quick", action="store_true",
        help="tiny model/load for CI smoke runs (seconds, not minutes)",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="instrument the bench with telemetry and append the "
             "Prometheus export to the output",
    )

    metrics = parser.add_argument_group("metrics options")
    metrics.add_argument(
        "--format", choices=["json", "prometheus"], default="json",
        help="export format for the metrics command",
    )
    metrics.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the export to PATH instead of stdout",
    )

    flow = parser.add_argument_group("run options")
    flow.add_argument(
        "--run-dir", default=None, metavar="DIR",
        help="checkpoint directory (default .flow_runs/<pipeline>)",
    )
    flow.add_argument(
        "--no-resume", action="store_true",
        help="ignore existing checkpoints and re-execute every step",
    )
    flow.add_argument(
        "--force", nargs="*", default=None, metavar="STEP",
        help="invalidate checkpoints before running: bare --force drops "
             "all, --force s1 s2 drops just those steps",
    )
    flow.add_argument(
        "--retries", type=int, default=2,
        help="retries per step on transient failures (attempts = retries+1)",
    )
    flow.add_argument(
        "--failsink", default=None, metavar="PATH",
        help="JSONL file for per-item failure records "
             "(default <run-dir>/failsink.jsonl)",
    )

    check = parser.add_argument_group("check options")
    check.add_argument(
        "--json", action="store_true",
        help="emit the check reports as JSON instead of text",
    )
    check.add_argument(
        "--verbose", action="store_true",
        help="include per-layer analysis facts in the text report",
    )
    check.add_argument(
        "--suppress", nargs="*", default=[], metavar="RULE",
        help="rule ids to drop from the reports (e.g. QS202 QI401)",
    )
    check.add_argument(
        "--max-crossbars", type=int, default=None,
        help="total crossbar-tile budget for the QC501 feasibility rule",
    )
    check.add_argument(
        "--deep", action="store_true",
        help="also deploy each model (random weights) and run the full "
             "abstract interpretation, not just the spec check",
    )
    check.add_argument(
        "--plans", action="store_true",
        help="deploy and trace each model and statically verify the "
             "compiled execution plans (PL6xx rules) for every int "
             "variant: int, shift, and legacy kernels",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "check":
        output, code = run_check(args)
        print(output)
        return code
    if args.command == "run":
        output, code = run_flow(args)
        print(output)
        return code
    print(run_command(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
