"""Guarded serving: health checks, self-repair, and software fallback.

:class:`GuardedSpikingSystem` wraps a deployed
:class:`~repro.snc.system.SpikingSystem` so that a damaged chip degrades
gracefully instead of silently serving wrong answers:

- **periodic health probes** — every ``probe_every`` requests the mapped
  crossbars are probed (:func:`~repro.snc.diagnosis.diagnose`);
- **tiered remediation** — an unhealthy probe triggers the repair ladder
  (:func:`~repro.snc.remediation.run_remediation_ladder`) when
  ``auto_remediate`` is on;
- **guarded fallback** — if the chip still misses spec after repair, all
  subsequent traffic is served by the bit-exact quantized software twin
  (never *worse* than the software model, by construction);
- **bounded retry** — transient spike-path failures (exceptions from the
  analog path) are retried up to ``max_retries`` times, then the single
  request falls back to software without condemning the chip.

Operational counters are exposed via :meth:`GuardedSpikingSystem.
runtime_stats` for scraping by a metrics pipeline.

Thread safety: the guard serializes :meth:`GuardedSpikingSystem.infer`
and :meth:`GuardedSpikingSystem.check_health` behind one re-entrant
lock.  Counter updates, probe scheduling, and the underlying engines
(whose buffer pools are single-threaded by design) are therefore
race-free when many pool replicas share one guard as their degraded
path — parallelism belongs to the per-replica engines of
:mod:`repro.serve`, not to the guard.
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass
from typing import Optional

import numpy as np

from repro.core.deployment import make_fallback_reference
from repro.obs import SYSTEM_CLOCK, Clock, Telemetry
from repro.runtime.engine import EngineConfig, InferenceEngine
from repro.snc.diagnosis import DEFAULT_CODE_TOLERANCE, HealthReport, diagnose
from repro.snc.remediation import RemediationConfig, run_remediation_ladder


@dataclass
class GuardConfig:
    """Serving-guard policy.

    ``probe_every = n`` probes before the first request and then every
    ``n`` requests; ``0`` probes only on demand (:meth:`GuardedSpikingSystem.
    check_health`).  ``max_deviating_fraction`` is the serving spec: the
    analog path is trusted only while the network-wide fraction of
    deviating device pairs stays at or below it.
    """

    probe_every: int = 0
    code_tolerance: float = DEFAULT_CODE_TOLERANCE
    max_deviating_fraction: float = 0.0
    max_retries: int = 2
    auto_remediate: bool = True
    remediation: Optional[RemediationConfig] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.probe_every < 0:
            raise ValueError(f"probe_every must be >= 0, got {self.probe_every}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def remediation_config(self) -> RemediationConfig:
        if self.remediation is not None:
            return self.remediation
        return RemediationConfig(
            code_tolerance=self.code_tolerance,
            target_deviating_fraction=self.max_deviating_fraction,
            seed=self.seed,
        )


@dataclass
class RuntimeCounters:
    """Operational counters of one guarded system."""

    requests_total: int = 0
    requests_analog: int = 0
    requests_software: int = 0
    transient_failures: int = 0
    transient_retries: int = 0
    probes_run: int = 0
    probes_failed: int = 0
    probe_latency_total_s: float = 0.0
    repairs_attempted: int = 0
    repairs_succeeded: int = 0
    fallback_engaged: bool = False

    @property
    def probe_latency_mean_s(self) -> float:
        return self.probe_latency_total_s / max(self.probes_run, 1)


@dataclass
class _HealthEvent:
    """One probe (and optional repair) episode, for the event log."""

    request_index: int
    healthy: bool
    deviating_pairs: int
    remediated: bool = False
    spec_met_after: Optional[bool] = None


class GuardedSpikingSystem:
    """A :class:`~repro.snc.system.SpikingSystem` wrapped for production.

    The wrapper owns a frozen clone of the quantized software twin
    (:func:`~repro.core.deployment.make_fallback_reference`); whenever the
    analog path is out of spec — or throws transiently — requests are
    served from it instead, so guarded output is never worse than the
    software model's.
    """

    def __init__(self, system, config: Optional[GuardConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 clock: Optional[Clock] = None) -> None:
        self.system = system
        self.config = config or GuardConfig()
        self.telemetry = telemetry
        # Probe latency is timed through an injected clock (RL005): the
        # telemetry clock when observed, the system clock otherwise.
        self.clock: Clock = clock or (
            telemetry.clock if telemetry is not None else SYSTEM_CLOCK
        )
        self.software_twin = make_fallback_reference(system.software_reference)
        # Fallback traffic is served through a compiled plan (float64, so
        # bit-identical to the twin's graph executor; the integer fast path
        # engages when the twin's weights sit on the clustering grid).
        self.twin_engine = InferenceEngine(
            self.software_twin, EngineConfig(dtype=np.float64),
            telemetry=telemetry,
        )
        self.counters = RuntimeCounters()
        self.health_log: list = []
        self.last_report: Optional[HealthReport] = None
        self._requests_since_probe: Optional[int] = None  # None = never probed
        # Serializes serving, counter mutation, and probe scheduling so
        # concurrent callers (e.g. serve-pool replicas in degraded mode)
        # cannot race counters or interleave probes with remediation.
        # Re-entrant because infer() probes via check_health().
        self._lock = threading.RLock()

    def _obs_inc(self, name: str, help: str, amount: float = 1,
                 **labels: str) -> None:
        """Mirror one counter increment into the shared telemetry registry."""
        if self.telemetry is not None:
            self.telemetry.registry.counter(name, help=help, **labels).inc(amount)

    def _obs_fallback_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.gauge(
                "guard_fallback_engaged",
                help="1 while all traffic is served by the software twin",
            ).set(1.0 if self.counters.fallback_engaged else 0.0)

    # -- serving ------------------------------------------------------------
    def infer(self, images: np.ndarray) -> np.ndarray:
        """Serve one batch; returns logits ``(batch, classes)``.

        Safe to call from many threads: the whole request (probe
        scheduling, counters, analog/software execution) runs under the
        guard's lock.
        """
        with self._lock:
            if self._probe_due():
                self.check_health()
            self.counters.requests_total += 1
            if self._requests_since_probe is not None:
                self._requests_since_probe += 1
            if self.counters.fallback_engaged:
                return self._software_infer_locked(images)
            for attempt in range(self.config.max_retries + 1):
                try:
                    logits = self.system.infer(images)
                except Exception:
                    self.counters.transient_failures += 1
                    self._obs_inc("guard_transient_failures_total",
                                  "Analog-path exceptions caught by the guard")
                    if attempt < self.config.max_retries:
                        self.counters.transient_retries += 1
                        continue
                    # Retries exhausted: serve this request from software
                    # without condemning the analog path.
                    return self._software_infer_locked(images)
                self.counters.requests_analog += 1
                self._obs_inc("guard_requests_total",
                              "Guarded requests by serving path", path="analog")
                return logits
            raise AssertionError("unreachable")  # pragma: no cover

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        return self.infer(images).argmax(axis=1)

    def accuracy(self, dataset, batch_size: int = 128) -> float:
        """Top-1 accuracy through the guarded serving path."""
        correct = 0
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            correct += int((self.predict(images) == labels).sum())
        return correct / len(dataset)

    def _software_infer_locked(self, images: np.ndarray) -> np.ndarray:
        # Caller must hold self._lock (enforced by naming: lint RL007
        # exempts *_locked helpers but flags any other unlocked mutation).
        self.counters.requests_software += 1
        self._obs_inc("guard_requests_total",
                      "Guarded requests by serving path", path="software")
        return self.twin_engine.run(images)

    # -- health -------------------------------------------------------------
    def _probe_due(self) -> bool:
        if self.config.probe_every == 0:
            return False
        if self._requests_since_probe is None:
            return True
        return self._requests_since_probe >= self.config.probe_every

    def _within_spec(self, report: HealthReport) -> bool:
        fraction = report.deviating_pairs / max(report.total_pairs, 1)
        return fraction <= self.config.max_deviating_fraction

    def check_health(self) -> HealthReport:
        """Probe the chip now; remediate and/or engage fallback as needed.

        Returns the final :class:`~repro.snc.diagnosis.HealthReport`
        (post-repair, if the ladder ran).
        """
        with self._lock:
            start = self.clock()
            report = diagnose(
                self.system,
                code_tolerance=self.config.code_tolerance,
                seed=self.config.seed,
            )
            self.counters.probes_run += 1
            self._obs_inc("guard_probes_total", "Health probes run")
            event = _HealthEvent(
                request_index=self.counters.requests_total,
                healthy=report.healthy,
                deviating_pairs=report.deviating_pairs,
            )
            if not self._within_spec(report):
                self.counters.probes_failed += 1
                self._obs_inc("guard_probes_failed_total",
                              "Health probes that missed the serving spec")
                if self.config.auto_remediate:
                    self.counters.repairs_attempted += 1
                    self._obs_inc("guard_repairs_attempted_total",
                                  "Remediation-ladder runs triggered by probes")
                    outcome = run_remediation_ladder(self.system, self.config.remediation_config())
                    report = outcome.final
                    event.remediated = True
                    event.spec_met_after = outcome.spec_met
                    if outcome.spec_met:
                        self.counters.repairs_succeeded += 1
                        self._obs_inc("guard_repairs_succeeded_total",
                                      "Remediation-ladder runs that restored spec")
                # Engage (or clear) the fallback path based on the final state.
                self.counters.fallback_engaged = not self._within_spec(report)
            else:
                self.counters.fallback_engaged = False
            self._obs_fallback_gauge()
            probe_seconds = self.clock() - start
            self.counters.probe_latency_total_s += probe_seconds
            if self.telemetry is not None:
                self.telemetry.registry.histogram(
                    "guard_probe_seconds", help="Wall time of one health probe",
                ).observe(probe_seconds)
            self.last_report = report
            self.health_log.append(event)
            self._requests_since_probe = 0
            return report

    # -- observability ------------------------------------------------------
    @property
    def serving_path(self) -> str:
        """Which path the next request will take: ``analog`` or ``software``."""
        return "software" if self.counters.fallback_engaged else "analog"

    def runtime_stats(self) -> dict:
        """A flat dict of counters, ready for a metrics scraper.

        Taken under the guard's lock, so the snapshot is internally
        consistent even while other threads serve requests.
        """
        with self._lock:
            stats = asdict(self.counters)
            stats["probe_latency_mean_s"] = self.counters.probe_latency_mean_s
            stats["serving_path"] = self.serving_path
            stats["health_checks_logged"] = len(self.health_log)
            stats["twin_engine"] = self.twin_engine.runtime_stats()
            return stats
