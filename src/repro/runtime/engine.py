"""The inference engine: compiled plans with a guarded graph fallback.

:class:`InferenceEngine` wraps a trained/deployed :class:`~repro.nn.modules.
Module` for serving.  On first use it traces the module into an
:class:`~repro.runtime.plan.ExecutionPlan` (fused kernels, pooled buffers,
and — for quantized networks — the integer fast path); every later call
replays the flat plan with zero autograd overhead.  Three guarantees:

- **equivalence** — at trace time the plan's output is checked against the
  graph executor on the trace batch; a deviating plan is rejected and the
  engine serves from the graph instead.  Float64 plans mirror the graph's
  operations bit for bit; the integer fast path is exact in its integer
  arithmetic and agrees with the graph to tie-breaking precision.
- **freshness** — before each run the plan compares the traced structure
  and weight snapshots against the live module (remediation reprogramming,
  re-quantization, or module surgery all mutate them) and re-traces
  automatically when anything changed.
- **graceful degradation** — anything the tracer cannot linearize
  (residual topologies, training-mode layers) falls back to the graph
  executor; the engine never refuses to serve.

Dtype policy: ``EngineConfig.dtype`` (float32 by default, for serving
throughput) applies to pure-float plans; plans that activate the integer
fast path run their scalar tails in float64 so results stay comparable to
the graph at full precision.  Pass ``dtype=np.float64`` for bit-identical
float plans (what `SpikingSystem` and the analysis eval loops use).

Observability: :attr:`InferenceEngine.stats` counters are backed by a
private thread-safe :class:`~repro.obs.metrics.MetricsRegistry`, so
engines shared across serve replicas never lose increments.  Passing a
:class:`~repro.obs.Telemetry` additionally mirrors the counters into the
shared registry (labelled by model, aggregated across engines), records
run-latency histograms, emits ``engine.run``/``engine.graph_run`` spans,
and times each plan step by op class — all through the telemetry's
injected clock; with telemetry off the serving path reads no clock at
all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.modules import Module
from repro.nn.tensor import Tensor, no_grad
from repro.obs import Telemetry
from repro.obs.metrics import Counter, MetricsRegistry
from repro.runtime.plan import ExecutionPlan, PlanError, compile_plan


@dataclass
class EngineConfig:
    """How to compile and run inference plans.

    Attributes
    ----------
    dtype:
        Compute dtype for pure-float plans (float32 default for serving;
        float64 reproduces the graph executor bit for bit).
    int_path:
        ``"auto"`` (default) activates the integer fast path whenever the
        traced chain carries clustered N-bit weights and M-bit signal
        quantizers; ``"off"`` forces all-float plans; ``"shift"`` is the
        multiplier-less ``engine_shift`` variant — before tracing, the
        module's per-layer scales are snapped to the power-of-two grid
        (:func:`repro.core.pow2.snap_scales_pow2` — this mutates the
        module and in general perturbs its logits, see
        ``docs/performance.md``), so every requantize runs as an
        arithmetic right shift with no multiplier.
    int_kernels:
        ``"fused"`` (default) uses the cached-lowering batched/channel-major
        GEMM conv kernels with the pool-fused epilogue; ``"legacy"`` keeps
        the PR2-era kernels for same-machine A/B benchmarking (not
        compatible with ``int_path="shift"``).
    exploit_sparsity:
        Prune all-zero GEMM columns on the integer path (exact — spike
        counts the Neuron Convergence regularizer zeroed contribute
        nothing).
    sparsity_max_density:
        Prune only when the fraction of live columns is at or below this
        (pruning overhead must buy a real GEMM reduction).
    min_sparsity_columns:
        Skip the sparsity scan for small GEMMs.
    verify_on_trace:
        Check the compiled plan against the graph executor on the trace
        batch before trusting it (cheap; runs once per trace).
    static_check:
        Run the static verifier (:mod:`repro.check`) on the module before
        the first trace.  Error-severity findings mean the plan compiler's
        assumptions do not hold, so the engine degrades to the graph
        executor (it never refuses to serve) and records the report in
        :attr:`InferenceEngine.check_report`.
    plan_check:
        Run the static *plan* verifier (:mod:`repro.check.plancheck`,
        rules PL601–PL605) on every freshly compiled plan before trusting
        it.  The pre-trace check proves module-level invariants; this one
        proves the compiled artifact — accumulator bounds, copy-program
        aliasing, layout/dtype handoffs, shift feasibility, replay
        purity.  Error findings drop the plan and degrade to graph-only
        serving, recorded as ``plancheck_errors``; the report lands in
        :attr:`InferenceEngine.plan_report` and merges into
        :attr:`InferenceEngine.check_report` when one exists.
    check_staleness:
        Compare weight snapshots before each run and re-trace on mismatch.
    trace_batch:
        Number of samples from the first batch used for tracing.
    batch_size:
        Default micro-batch for :meth:`InferenceEngine.infer_batched`.
    """

    dtype: type = np.float32
    int_path: str = "auto"
    int_kernels: str = "fused"
    exploit_sparsity: bool = True
    sparsity_max_density: float = 0.75
    min_sparsity_columns: int = 64
    verify_on_trace: bool = True
    static_check: bool = True
    plan_check: bool = True
    check_staleness: bool = True
    trace_batch: int = 2
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.int_path not in ("auto", "off", "shift"):
            raise ValueError(
                f"int_path must be 'auto', 'off', or 'shift', got {self.int_path!r}"
            )
        if self.int_kernels not in ("fused", "legacy"):
            raise ValueError(
                f"int_kernels must be 'fused' or 'legacy', got {self.int_kernels!r}"
            )
        if self.int_kernels == "legacy" and self.int_path == "shift":
            raise ValueError("int_path='shift' requires the fused int kernels")
        if self.trace_batch < 1:
            raise ValueError(f"trace_batch must be >= 1, got {self.trace_batch}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


class EngineStats:
    """Operational counters of one engine (scraped into runtime stats).

    Each field is a thread-safe registry counter read back as an ``int``
    property, so engines shared across serve replicas or guard threads
    never lose increments (a plain ``stats.runs += 1`` drops updates when
    two threads interleave between the read and the write).  The backing
    registry is private to the engine; fleet-wide aggregation happens in
    the shared :class:`~repro.obs.Telemetry` registry instead.
    """

    FIELDS = {
        "runs": "Batches served from a compiled plan",
        "graph_runs": "Batches served by the graph executor",
        "retraces": "Plans dropped as stale and re-traced",
        "trace_failures": "Trace attempts rejected with PlanError",
        "precheck_errors": "Static-check errors that forced graph-only mode",
        "plancheck_errors": "Plan-verifier errors that forced graph-only mode",
    }

    def __init__(self) -> None:
        self._registry = MetricsRegistry()
        self._counters = {
            name: self._registry.counter(f"engine_{name}_total", help=text)
            for name, text in self.FIELDS.items()
        }
        self.sparsity: dict = {}

    def counter(self, name: str) -> Counter:
        """The live backing counter for ``name`` (one of :attr:`FIELDS`)."""
        return self._counters[name]

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment one counter (thread-safe)."""
        self._counters[name].inc(amount)

    @property
    def runs(self) -> int:
        return int(self._counters["runs"].value)

    @property
    def graph_runs(self) -> int:
        return int(self._counters["graph_runs"].value)

    @property
    def retraces(self) -> int:
        return int(self._counters["retraces"].value)

    @property
    def trace_failures(self) -> int:
        return int(self._counters["trace_failures"].value)

    @property
    def precheck_errors(self) -> int:
        return int(self._counters["precheck_errors"].value)

    @property
    def plancheck_errors(self) -> int:
        return int(self._counters["plancheck_errors"].value)


def _model_label(module: Module) -> str:
    """Telemetry label for a served module.

    Deployed networks arrive wrapped (input quantizer + network body);
    the body's class name — ``LeNet``, not ``_PrependInput`` — is the
    series label operators will look for.
    """
    inner = getattr(module, "network", None)
    if isinstance(inner, Module):
        return type(inner).__name__
    return type(module).__name__


class InferenceEngine:
    """Serve inference for one module through compiled execution plans."""

    def __init__(self, module: Module, config: Optional[EngineConfig] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        self.module = module
        self.config = config or EngineConfig()
        self.stats = EngineStats()
        self.telemetry = telemetry
        self._model_name = _model_label(module)
        # Mirror counters in the shared registry, labelled by model so
        # replicas of the same deployment aggregate into one series.
        self._mirror = (
            {
                name: telemetry.registry.counter(
                    f"engine_{name}_total", help=text, model=self._model_name
                )
                for name, text in EngineStats.FIELDS.items()
            }
            if telemetry is not None
            else None
        )
        self._plan: Optional[ExecutionPlan] = None
        self._graph_only = False
        self.check_report = None  # repro.check.CheckReport after first trace
        self.plan_report = None   # plan-verifier CheckReport after each compile

    def _count(self, name: str, amount: float = 1) -> None:
        self.stats.inc(name, amount)
        if self._mirror is not None:
            self._mirror[name].inc(amount)

    # -- serving ------------------------------------------------------------
    def run(self, images: np.ndarray) -> np.ndarray:
        """Run one batch; returns logits ``(batch, classes)`` (owned copy)."""
        images = np.asarray(images, dtype=np.float64)
        plan = self._ensure_plan(images)
        if plan is None:
            return self._graph_run(images)
        self._count("runs")
        if self.telemetry is None:
            return np.array(plan.run(images))
        return self._plan_run_observed(plan, images)

    def _plan_run_observed(self, plan: ExecutionPlan, images: np.ndarray) -> np.ndarray:
        """Plan replay with spans, per-step timings, and latency histograms."""
        telemetry = self.telemetry
        if plan.uses_int_path:
            backend = "shift" if self.config.int_path == "shift" else "int"
        else:
            backend = plan.dtype.name
        start = telemetry.clock()
        out = np.array(plan.run_timed(images, telemetry, model=self._model_name))
        end = telemetry.clock()
        telemetry.tracer.record(
            "engine.run", start, end,
            model=self._model_name, rows=len(images), backend=backend,
        )
        telemetry.registry.histogram(
            "engine_run_seconds", help="Wall time of one engine batch",
            model=self._model_name, backend=backend,
        ).observe(end - start)
        telemetry.registry.counter(
            "engine_rows_total", help="Input rows served by engines",
            model=self._model_name,
        ).inc(len(images))
        return out

    def infer_batched(self, images: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Stream ``images`` through the plan in micro-batches."""
        if batch_size is None:
            batch_size = self.config.batch_size
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        outputs = [
            self.run(images[start : start + batch_size])
            for start in range(0, len(images), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict(self, images: np.ndarray) -> np.ndarray:
        return self.run(images).argmax(axis=1)

    # -- plan lifecycle -----------------------------------------------------
    def _ensure_plan(self, images: np.ndarray) -> Optional[ExecutionPlan]:
        if self._graph_only:
            return None
        if (
            self._plan is not None
            and self.config.check_staleness
            and self._plan.is_stale()
        ):
            self._plan = None
            self._count("retraces")
        if self._plan is None:
            sample = images[: self.config.trace_batch]
            if self.config.int_path == "shift" and not self._snap_pow2():
                return None
            if not self._precheck(sample):
                return None
            try:
                plan = compile_plan(self.module, sample, self.config)
            except PlanError:
                self._count("trace_failures")
                self._graph_only = True
                return None
            if not self._postcheck(plan):
                return None
            self._plan = plan
        return self._plan

    def _snap_pow2(self) -> bool:
        """Snap the module's scales onto the power-of-two grid (shift mode).

        Runs before every (re-)trace and is idempotent, so a module already
        on the grid is untouched.  Mutates weight scales and activation
        gains in place — the graph executor of this module then computes
        the *snapped* network, which is what shift-mode conformance
        compares against.  An unsnappable module (a layer whose requantize
        shift would be negative) degrades to graph-only serving.
        """
        from repro.core.pow2 import snap_scales_pow2

        try:
            snap_scales_pow2(self.module)
        except ValueError:
            self._count("trace_failures")
            self._graph_only = True
            return False
        return True

    def _precheck(self, sample: np.ndarray) -> bool:
        """Statically verify the module before the first trace.

        Errors mean the plan compiler's invariants (uniform quantizers,
        on-grid weights, consistent shapes) do not hold — serve from the
        graph executor instead of trusting a compiled plan.  Runs before
        every (re-)trace, so freshness matches the plan's.
        """
        if not self.config.static_check:
            return True
        # Lazy import: repro.check pulls in model/deployment modules the
        # engine itself never needs.
        from repro.check import CheckConfig, check_module

        self.check_report = check_module(
            self.module, input_shape=tuple(sample.shape[1:]),
            config=CheckConfig(
                require_pow2_scales=(self.config.int_path == "shift")
            ),
            target=f"engine:{type(self.module).__name__}",
        )
        if self.check_report.has_errors:
            self._count("precheck_errors", len(self.check_report.errors))
            self._graph_only = True
            return False
        return True

    def _postcheck(self, plan: ExecutionPlan) -> bool:
        """Statically verify the compiled plan IR before trusting it.

        The pre-trace check proves module-level invariants; this one
        proves the *compiled artifact* — accumulator bounds (PL601),
        copy-program aliasing (PL602), layout/dtype handoffs (PL603),
        shift feasibility (PL604), replay purity (PL605).  Error findings
        mean the plan must not run: the engine refuses it and falls back
        to the graph executor, recording the count in
        ``plancheck_errors`` and the report in :attr:`plan_report` (also
        merged into :attr:`check_report` when the precheck produced one).
        """
        if not self.config.plan_check:
            return True
        # Lazy import, mirroring _precheck: repro.check is optional here.
        from repro.check.plancheck import check_plan

        report = check_plan(plan, target=f"engine-plan:{type(self.module).__name__}")
        self.plan_report = report
        if self.check_report is not None:
            self.check_report.extend(report)
        if report.has_errors:
            self._count("plancheck_errors", len(report.errors))
            self._graph_only = True
            return False
        return True

    def invalidate(self) -> None:
        """Drop the current plan (next run re-traces)."""
        self._plan = None

    def _graph_run(self, images: np.ndarray) -> np.ndarray:
        self._count("graph_runs")
        telemetry = self.telemetry
        if telemetry is None:
            with no_grad():
                return self.module(Tensor(images)).data
        start = telemetry.clock()
        with no_grad():
            out = self.module(Tensor(images)).data
        end = telemetry.clock()
        telemetry.tracer.record(
            "engine.graph_run", start, end,
            model=self._model_name, rows=len(images),
        )
        telemetry.registry.histogram(
            "engine_run_seconds", help="Wall time of one engine batch",
            model=self._model_name, backend="graph",
        ).observe(end - start)
        return out

    # -- observability ------------------------------------------------------
    @property
    def plan(self) -> Optional[ExecutionPlan]:
        return self._plan

    @property
    def active_backend(self) -> str:
        """``graph`` | ``untraced`` | ``int`` | ``shift`` | ``float32`` | ``float64``."""
        if self._graph_only:
            return "graph"
        if self._plan is None:
            return "untraced"
        if self._plan.uses_int_path:
            return "shift" if self.config.int_path == "shift" else "int"
        return self._plan.dtype.name

    def describe(self) -> str:
        if self._plan is not None:
            return self._plan.describe()
        return f"InferenceEngine(backend={self.active_backend}, not yet traced)"

    def runtime_stats(self) -> dict:
        stats = {
            "backend": self.active_backend,
            "runs": self.stats.runs,
            "graph_runs": self.stats.graph_runs,
            "retraces": self.stats.retraces,
            "trace_failures": self.stats.trace_failures,
        }
        if self.stats.precheck_errors:
            stats["precheck_errors"] = self.stats.precheck_errors
        if self.stats.plancheck_errors:
            stats["plancheck_errors"] = self.stats.plancheck_errors
        if self._plan is not None:
            stats["steps"] = len(self._plan.steps)
            stats["int_steps"] = self._plan.int_steps
            stats["pool_bytes"] = self._plan.pool.nbytes
            sparsity = {}
            for step in self._plan.steps:
                if hasattr(step, "last_density") and getattr(step, "gemm_runs", 0):
                    sparsity[f"step{step.index}"] = {
                        "density": round(step.last_density, 4),
                        "pruned_runs": step.pruned_runs,
                        "gemm_runs": step.gemm_runs,
                    }
            if sparsity:
                stats["sparsity"] = sparsity
        return stats
