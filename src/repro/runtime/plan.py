"""Traced execution plans for inference (the engine's compile step).

A deployed network is a *linear chain* of cheap, well-known layers; walking
the autograd ``Module`` graph for every request re-allocates im2col
workspaces, builds Tensor wrappers, and registers backward closures that
inference never uses.  This module traces a module once (forward hooks on
the atomic layers, chained by tensor identity) and compiles the chain into
a flat list of fused steps sharing a per-shape buffer pool:

- ``conv + bias + ReLU + quantize`` and ``linear + bias + quantize`` run as
  one step (the quantizer's ``clip(⌊gain·y + ½⌋, 0, 2^M−1)`` subsumes the
  ReLU, since negatives clip to zero either way);
- im2col writes straight into a pooled workspace, matmuls write into
  pooled outputs (``np.matmul(..., out=)``);
- for quantized/deployed networks an **integer fast path** carries M-bit
  activations as small-int spike counts and N-bit weight codes in a BLAS
  carrier dtype chosen so every accumulation is exact (float32 while the
  worst-case partial sum fits 2^24, float64 otherwise), with a single
  affine rescale ``y = α·acc + β`` per layer — β folds the bias and any
  input-quantizer offset;
- spike-domain sparsity (the Neuron Convergence regularizer zeroes most
  counts) is exploited by pruning all-zero GEMM columns, which is exact in
  integer arithmetic;
- the integer conv kernels compile their im2col lowering into cached
  ``(dst_view, src_view)`` copy programs feeding a tap-major workspace
  and a batched GEMM over strided per-image panels, and absorb a trailing
  max pool into the requantize epilogue (see :class:`IntConvStep`);
- with ``int_path="shift"`` (``engine_shift``) per-layer scales are snapped
  to the power-of-two grid beforehand (:func:`repro.core.pow2.
  snap_scales_pow2`) and requantization runs multiplier-free as
  :func:`shift_requantize`.

Networks the tracer cannot linearize (residual/branching topologies, or
modules left in training mode) raise :class:`PlanError`; the engine then
falls back to the graph executor, so tracing is an optimization, never a
correctness requirement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import quantizers as Q
from repro.core.deployment import DynamicQuantizedActivation
from repro.core.modules import InputQuantizer, QuantizedActivation
from repro.nn.modules import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
)
from repro.nn.tensor import Tensor, no_grad
from repro.snc.mapping import SpikingConv2d, SpikingLinear


class PlanError(RuntimeError):
    """The module cannot be traced/compiled; callers fall back to the graph."""


# ---------------------------------------------------------------------------
# Buffer pool
# ---------------------------------------------------------------------------

class BufferPool:
    """Preallocated arrays keyed by ``(step key, shape, dtype)``.

    A plan owns one pool; each step asks for its workspaces by key, so a
    steady-state batch loop allocates nothing after the first batch of a
    given size.
    """

    def __init__(self) -> None:
        self._buffers: dict = {}

    def get(self, key, shape: Tuple[int, ...], dtype) -> np.ndarray:
        # Hot path: called dozens of times per batch.  The key keeps the
        # caller's dtype object verbatim (np.float32 vs np.dtype("f4") hash
        # apart, which only costs a duplicate entry if a step is
        # inconsistent with itself) to avoid per-call dtype normalization.
        full_key = (key, shape, dtype)
        buf = self._buffers.get(full_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[full_key] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(buf.nbytes for buf in self._buffers.values())

    def entries(self) -> List[Tuple[object, Tuple[int, ...], np.dtype, np.ndarray]]:
        """Snapshot of ``(key, shape, dtype, buffer)`` for every pooled array.

        The declared-IR surface over the pool: :meth:`ExecutionPlan.summarize`
        turns these into :class:`BufferIR` records so the static plan
        verifier can audit the working set without reading ``_buffers``.
        """
        return [
            (key, tuple(shape), np.dtype(dtype), buf)
            for (key, shape, dtype), buf in self._buffers.items()
        ]

    def __len__(self) -> int:
        return len(self._buffers)


# ---------------------------------------------------------------------------
# Declared plan IR (what repro.check.plancheck verifies)
# ---------------------------------------------------------------------------
#
# Every step *declares* its contract — accepted/produced layouts, counts
# windows, GEMM geometry, workspace keys, copy-program views — as plain
# records.  The static verifier consumes only this IR, never private step
# state, so a step that lies in its summary is a bug the seeded-defect
# tests catch, and new step kinds extend the IR instead of the verifier.


@dataclass(frozen=True)
class ViewIR:
    """Byte extent of one ndarray view relative to its base allocation."""

    base: int               #: ``id()`` of the owning base array
    lo: int                 #: first byte the view can touch
    hi: int                 #: one past the last byte the view can touch
    shape: Tuple[int, ...]

    def overlaps(self, other: "ViewIR") -> bool:
        """Conservative aliasing test: same base, intersecting byte ranges.

        Byte-interval intersection over-approximates true element overlap
        for strided views — the sound direction for a safety check.
        """
        return self.base == other.base and self.lo < other.hi and other.lo < self.hi


@dataclass(frozen=True)
class BufferIR:
    """One pooled allocation, attributed to the step whose key claimed it."""

    owner: Optional[int]    #: step index from the pool key; None = foreign key
    tag: str                #: workspace tag from the pool key ("" = bare key)
    shape: Tuple[int, ...]
    dtype: str
    base: int               #: ``id()`` of the base array (aliasing identity)
    nbytes: int


@dataclass
class StepIR:
    """One step's declared contract.

    ``None`` consistently means "no claim": a ``None`` layout list accepts
    any layout (elementwise step), a ``None`` ``layout_out`` leaves the
    layout unchanged, a ``None`` workspace dtype is input-dependent and
    exempt from the dtype audit.
    """

    index: int
    kind: str
    summary: str            #: the step's describe() line, for messages
    layouts_in: Optional[Tuple[str, ...]] = None
    layout_out: Optional[str] = None
    out_dtype: Optional[str] = None
    consumes_top: Optional[int] = None   #: counts window the step reads
    produces_top: Optional[int] = None   #: counts window the step emits
    rep_passthrough: bool = False        #: forwards the incoming rep unchanged
    carrier: Optional[str] = None        #: BLAS carrier of the int GEMM
    acc_dtype: Optional[str] = None      #: shift-mode integer accumulator
    reduction_k: Optional[int] = None    #: GEMM reduction length
    weight_bits: Optional[int] = None
    codes: Optional[np.ndarray] = None   #: (out, K) integer weight codes
    q_scale: Optional[float] = None
    shift: Optional[int] = None
    shift_offsets_absmax: Optional[float] = None
    fused_pool: Optional[Tuple[int, int]] = None
    workspaces: Dict[str, Optional[str]] = field(default_factory=dict)
    copy_views: Optional[List[Tuple[ViewIR, ViewIR]]] = None


@dataclass
class PlanIR:
    """The whole plan as declared records: step contracts + traced pool."""

    steps: List[StepIR]
    buffers: List[BufferIR]
    dtype: str
    int_steps: int
    int_path: str
    int_kernels: str


def _base_array(arr: np.ndarray) -> np.ndarray:
    """Chase ``.base`` to the array that owns the memory."""
    base = arr
    while isinstance(base.base, np.ndarray):
        base = base.base
    return base


def _view_ir(arr: np.ndarray) -> ViewIR:
    """Describe ``arr`` as a byte extent over its base allocation.

    Computed from shape/strides directly (``np.byte_bounds`` is gone in
    numpy 2.x): negative strides extend the range downwards, positive
    upwards, plus one trailing itemsize.
    """
    base = _base_array(arr)
    origin = int(base.__array_interface__["data"][0])
    lo = hi = int(arr.__array_interface__["data"][0]) - origin
    if 0 in arr.shape:
        return ViewIR(base=id(base), lo=lo, hi=hi, shape=tuple(arr.shape))
    for n, stride in zip(arr.shape, arr.strides):
        extent = (n - 1) * stride
        if extent >= 0:
            hi += extent
        else:
            lo += extent
    return ViewIR(base=id(base), lo=lo, hi=hi + arr.itemsize, shape=tuple(arr.shape))


def _pool_key_owner(key: object) -> Tuple[Optional[int], str]:
    """``(owner step index, workspace tag)`` declared by a pool key.

    Pool keys are ``index``, ``(index, tag)`` or ``(index, tag, block)``;
    anything else is foreign to the plan and reported as ``(None, repr)``.
    """
    if isinstance(key, (int, np.integer)):
        return int(key), ""
    if (
        isinstance(key, tuple)
        and key
        and isinstance(key[0], (int, np.integer))
        and (len(key) == 1 or isinstance(key[1], str))
    ):
        return int(key[0]), (key[1] if len(key) > 1 else "")
    return None, repr(key)


def _block6(cols: np.ndarray, b: int, oh: int, ow: int, c: int, kh: int, kw: int) -> np.ndarray:
    """View the first ``c·kh·kw`` columns of ``cols`` as (B, oh, ow, C, kh, kw).

    ``cols`` may be wider than ``c·kh·kw`` (trailing constant bias-driver
    columns for the crossbar path), in which case a plain reshape of the
    slice would copy; the strided view writes in place.
    """
    s = cols.strides[1]
    row = cols.shape[1] * s
    return np.lib.stride_tricks.as_strided(
        cols,
        shape=(b, oh, ow, c, kh, kw),
        strides=(oh * ow * row, ow * row, row, kh * kw * s, kw * s, s),
    )


def _im2col_into(
    pool: BufferPool,
    key,
    x: np.ndarray,
    kernel: int,
    stride: int,
    padding: int,
    dtype,
    extra_cols: int = 0,
) -> Tuple[np.ndarray, int, int]:
    """im2col into a pooled buffer; trailing ``extra_cols`` are set to 1."""
    b, c, h, w = x.shape
    kh = kw = kernel
    if padding:
        padded = pool.get((key, "pad"), (b, c, h + 2 * padding, w + 2 * padding), x.dtype)
        padded.fill(0)
        padded[:, :, padding : padding + h, padding : padding + w] = x
        x = padded
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    k_data = c * kh * kw
    cols = pool.get((key, "cols"), (b * oh * ow, k_data + extra_cols), dtype)
    if extra_cols:
        cols[:, k_data:] = 1.0
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    np.copyto(_block6(cols, b, oh, ow, c, kh, kw), windows.transpose(0, 2, 3, 1, 4, 5))
    return cols, oh, ow


def _to_nchw(pool: BufferPool, key, mat: np.ndarray, b: int, oh: int, ow: int,
             oc: int, dtype) -> np.ndarray:
    """Copy a (B·oh·ow, oc) matmul result into a pooled NCHW buffer."""
    out = pool.get((key, "nchw"), (b, oc, oh, ow), dtype)
    np.copyto(out, mat.reshape(b, oh, ow, oc).transpose(0, 3, 1, 2), casting="unsafe")
    return out


def _counts_dtype(top: int):
    if top <= np.iinfo(np.uint8).max:
        return np.dtype(np.uint8)
    if top <= np.iinfo(np.uint16).max:
        return np.dtype(np.uint16)
    return np.dtype(np.int64)


def shift_requantize(acc: np.ndarray, shift, offsets, top: int,
                     out: np.ndarray) -> np.ndarray:
    """Multiplier-less requantize: ``counts = clip((acc + offsets) >> shift, 0, top)``.

    For integer ``acc`` and ``offsets = ⌊q_offset · 2^shift⌋`` this equals
    the multiply epilogue ``clip(⌊2^-shift·acc + q_offset⌋, 0, top)``
    exactly: with ``n`` integer and ``f`` real, ``⌊n + f⌋ = n + ⌊f⌋`` and
    ``⌊x / 2^s⌋ = ⌊⌊x⌋ / 2^s⌋``, and numpy's ``right_shift`` on signed
    integers is an arithmetic shift, i.e. floor division by ``2^s``.

    ``shift`` and ``offsets`` may be scalars or per-channel arrays
    broadcastable against ``acc``.  ``acc`` is clobbered in place; the
    counts land in ``out`` via a truncating cast.  This is the entire
    per-element cost of requantization in ``engine_shift`` mode — no
    multiplier anywhere (see :mod:`repro.snc.cost` for the energy delta).
    """
    np.add(acc, offsets, out=acc)
    np.right_shift(acc, shift, out=acc)
    np.clip(acc, 0, top, out=acc)
    np.copyto(out, acc, casting="unsafe")
    return out


# ---------------------------------------------------------------------------
# Activation specs (what gets fused onto a weight layer)
# ---------------------------------------------------------------------------

@dataclass
class ActSpec:
    """Fused activation tail: optional ReLU, then one kind of quantizer."""

    relu: bool = False
    bits: Optional[int] = None      # M-bit signal quantizer (QuantizedActivation)
    gain: float = 1.0
    dyn_fmt: Optional[object] = None  # DynamicFixedPointFormat

    @property
    def top(self) -> float:
        return float(2 ** self.bits - 1) if self.bits is not None else 0.0

    def apply_float(self, mat: np.ndarray) -> None:
        """In place, mirroring the graph ops bit for bit (f64 inputs)."""
        if self.relu:
            np.maximum(mat, 0.0, out=mat)
        if self.bits is not None:
            # ste_quantize_signals: clip(floor(x·gain + ½), 0, top) / gain
            if self.gain != 1.0:
                mat *= self.gain
            mat += 0.5
            np.floor(mat, out=mat)
            np.clip(mat, 0.0, self.top, out=mat)
            if self.gain != 1.0:
                np.divide(mat, self.gain, out=mat)
        elif self.dyn_fmt is not None:
            np.copyto(mat, Q.quantize_dynamic_fixed_point(mat, self.dyn_fmt))

    def apply_counts(self, mat: np.ndarray) -> None:
        """Quantize float pre-activations to integer counts, in place.

        ``clip(⌊gain·y + ½⌋, 0, top)`` — the clip-at-zero subsumes the ReLU
        (``⌊gain·y + ½⌋ ≤ 0`` for every y ≤ 0), so counts match the graph's
        relu-then-quantize exactly.
        """
        if self.gain != 1.0:
            mat *= self.gain
        mat += 0.5
        np.floor(mat, out=mat)
        np.clip(mat, 0.0, self.top, out=mat)

    def describe(self) -> str:
        parts = []
        if self.relu:
            parts.append("relu")
        if self.bits is not None:
            parts.append(f"quant[M={self.bits}, gain={self.gain:.4g}]")
        if self.dyn_fmt is not None:
            parts.append("dynq")
        return "+".join(parts) if parts else "none"


def _act_spec(module: Module) -> ActSpec:
    if isinstance(module, QuantizedActivation):
        if not isinstance(module.inner, ReLU):
            raise PlanError(f"unsupported quantized inner activation {module.inner!r}")
        if not module.enabled:
            return ActSpec(relu=True)
        return ActSpec(relu=True, bits=module.bits, gain=float(module.gain))
    if isinstance(module, DynamicQuantizedActivation):
        if not isinstance(module.inner, ReLU):
            raise PlanError(f"unsupported quantized inner activation {module.inner!r}")
        return ActSpec(relu=True, dyn_fmt=module.fmt)
    if isinstance(module, ReLU):
        return ActSpec(relu=True)
    raise PlanError(f"not an activation module: {module!r}")


# ---------------------------------------------------------------------------
# Value representation between steps
# ---------------------------------------------------------------------------

@dataclass
class CountsRep:
    """Activations carried as integer spike counts.

    ``style="act"``: value = counts / gain (QuantizedActivation output).
    ``style="input"``: value = counts · (1/gain) + offset (InputQuantizer).
    Both mirror the exact float ops of the graph executor, so a dequantize
    step reconstructs bit-identical values.
    """

    gain: float
    offset: float
    top: int
    style: str  # "act" | "input"

    @property
    def value_scale(self) -> float:
        return 1.0 / self.gain


FLOAT_REP = None  # rep is either None (plain float values) or a CountsRep


# ---------------------------------------------------------------------------
# Steps
# ---------------------------------------------------------------------------

class Step:
    """One fused kernel of the plan.  ``run`` maps ndarray → ndarray."""

    kind = "step"

    def __init__(self, index: int) -> None:
        self.index = index

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind

    def summarize(self) -> StepIR:
        """This step's declared IR record (see :class:`StepIR`)."""
        return StepIR(self.index, self.kind, self.describe(), workspaces={"": None})


class InputQuantFloatStep(Step):
    kind = "input-quant"

    def __init__(self, index: int, module: InputQuantizer, dtype) -> None:
        super().__init__(index)
        self.bits = module.bits
        self.offset = float(module.offset)
        self.gain = float(module.gain)
        self.top = float(2 ** module.bits - 1)
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        buf = pool.get(self.index, x.shape, self.dtype)
        np.subtract(x, self.offset, out=buf, casting="unsafe")
        buf *= self.gain
        buf += 0.5
        np.floor(buf, out=buf)
        np.clip(buf, 0.0, self.top, out=buf)
        buf *= 1.0 / self.gain
        buf += self.offset
        return buf

    def describe(self) -> str:
        return f"input-quant[M={self.bits}] :: {self.dtype.name}"

    def summarize(self) -> StepIR:
        """Declared IR: elementwise, float values out."""
        return StepIR(self.index, self.kind, self.describe(),
                      out_dtype=self.dtype.name, workspaces={"": self.dtype.name})


class InputQuantCountsStep(Step):
    kind = "input-quant-int"

    def __init__(self, index: int, module: InputQuantizer) -> None:
        super().__init__(index)
        self.bits = module.bits
        self.offset = float(module.offset)
        self.gain = float(module.gain)
        self.top = float(2 ** module.bits - 1)
        self.rep = CountsRep(self.gain, self.offset, 2 ** module.bits - 1, "input")
        self.out_dtype = _counts_dtype(self.rep.top)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        buf = pool.get((self.index, "f"), x.shape, np.float64)
        if self.offset != 0.0:
            np.subtract(x, self.offset, out=buf, casting="unsafe")
            buf *= self.gain
        else:
            np.multiply(x, self.gain, out=buf, casting="unsafe")
        buf += 0.5
        counts = pool.get((self.index, "c"), x.shape, self.out_dtype)
        # No explicit floor: the clip bounds are integers, so clipping first
        # and letting the truncating cast floor afterwards yields exactly
        # clip(⌊v⌋, 0, top) — negatives clip to 0 before the cast.
        np.clip(buf, 0.0, self.top, out=counts, casting="unsafe")
        return counts

    def describe(self) -> str:
        return f"input-quant[M={self.bits}] :: {self.out_dtype.name}-counts"

    def summarize(self) -> StepIR:
        """Declared IR: elementwise, opens the input counts window."""
        return StepIR(self.index, self.kind, self.describe(),
                      out_dtype=self.out_dtype.name,
                      produces_top=int(self.rep.top),
                      workspaces={"f": "float64", "c": self.out_dtype.name})


class DequantStep(Step):
    """Counts → float values, mirroring the graph's exact reconstruction."""

    kind = "dequant"

    def __init__(self, index: int, rep: CountsRep, dtype) -> None:
        super().__init__(index)
        self.rep = rep
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        buf = pool.get(self.index, x.shape, self.dtype)
        if self.rep.style == "act":
            np.divide(x, self.rep.gain, out=buf, casting="unsafe")
        else:
            np.multiply(x, 1.0 / self.rep.gain, out=buf, casting="unsafe")
            buf += self.rep.offset
        return buf

    def describe(self) -> str:
        return f"dequant[{self.rep.style}] :: {self.dtype.name}"

    def summarize(self) -> StepIR:
        """Declared IR: closes the counts window, emits float values."""
        return StepIR(self.index, self.kind, self.describe(),
                      out_dtype=self.dtype.name, consumes_top=int(self.rep.top),
                      workspaces={"": self.dtype.name})


class ActStep(Step):
    """Standalone activation (not fused onto a weight layer)."""

    kind = "act"

    def __init__(self, index: int, act: ActSpec, dtype) -> None:
        super().__init__(index)
        self.act = act
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        buf = pool.get(self.index, x.shape, self.dtype)
        np.copyto(buf, x, casting="unsafe")
        self.act.apply_float(buf)
        return buf

    def describe(self) -> str:
        return f"{self.act.describe()} :: {self.dtype.name}"

    def summarize(self) -> StepIR:
        """Declared IR: elementwise float activation."""
        return StepIR(self.index, self.kind, self.describe(),
                      out_dtype=self.dtype.name, workspaces={"": self.dtype.name})


class FloatConvStep(Step):
    """conv + bias + fused activation, optionally emitting integer counts."""

    kind = "conv2d"

    def __init__(self, index: int, conv: Conv2d, act: Optional[ActSpec], dtype,
                 counts_rep: Optional[CountsRep] = None) -> None:
        super().__init__(index)
        self.conv = conv
        self.act = act
        self.dtype = np.dtype(dtype)
        self.counts_rep = counts_rep
        self.out_dtype = (
            _counts_dtype(counts_rep.top) if counts_rep is not None else self.dtype
        )
        w = conv.weight.data.reshape(conv.out_channels, -1)
        # float64 keeps a view so the matmul is the graph's, bit for bit;
        # other dtypes take a contiguous cast copy.
        self.w_mat = w if self.dtype == np.float64 else np.ascontiguousarray(w, dtype=self.dtype)
        self.bias = None if conv.bias is None else conv.bias.data.astype(self.dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        b = x.shape[0]
        oc = self.conv.out_channels
        cols, oh, ow = _im2col_into(
            pool, self.index, x, self.conv.kernel_size, self.conv.stride,
            self.conv.padding, self.dtype,
        )
        out = pool.get((self.index, "mat"), (cols.shape[0], oc), self.dtype)
        np.matmul(cols, self.w_mat.T, out=out)
        if self.bias is not None:
            out += self.bias
        if self.counts_rep is not None:
            self.act.apply_counts(out)
        elif self.act is not None:
            self.act.apply_float(out)
        return _to_nchw(pool, self.index, out, b, oh, ow, oc, self.out_dtype)

    def describe(self) -> str:
        c = self.conv
        tail = "none" if self.act is None else self.act.describe()
        rep = f"{self.out_dtype.name}-counts" if self.counts_rep is not None else self.dtype.name
        return (f"conv2d({c.in_channels}→{c.out_channels}, k={c.kernel_size}) "
                f"+ {tail} :: {rep}")

    def summarize(self) -> StepIR:
        """Declared IR: batch-major float conv, optionally emitting counts."""
        return StepIR(
            self.index, self.kind, self.describe(),
            layouts_in=("batch",), layout_out="batch",
            out_dtype=self.out_dtype.name,
            produces_top=(int(self.counts_rep.top) if self.counts_rep is not None else None),
            workspaces={"pad": None, "cols": self.dtype.name,
                        "mat": self.dtype.name, "nchw": self.out_dtype.name},
        )


class FloatLinearStep(Step):
    kind = "linear"

    def __init__(self, index: int, lin: Linear, act: Optional[ActSpec], dtype,
                 counts_rep: Optional[CountsRep] = None) -> None:
        super().__init__(index)
        self.lin = lin
        self.act = act
        self.dtype = np.dtype(dtype)
        self.counts_rep = counts_rep
        self.out_dtype = (
            _counts_dtype(counts_rep.top) if counts_rep is not None else self.dtype
        )
        w = lin.weight.data
        self.w_mat = w if self.dtype == np.float64 else np.ascontiguousarray(w, dtype=self.dtype)
        self.bias = None if lin.bias is None else lin.bias.data.astype(self.dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        xin = x
        if xin.dtype != self.dtype:
            cast = pool.get((self.index, "in"), x.shape, self.dtype)
            np.copyto(cast, x, casting="unsafe")
            xin = cast
        out = pool.get((self.index, "mat"), (x.shape[0], self.lin.out_features), self.dtype)
        np.matmul(xin, self.w_mat.T, out=out)
        if self.bias is not None:
            out += self.bias
        if self.counts_rep is not None:
            self.act.apply_counts(out)
            counts = pool.get((self.index, "c"), out.shape, self.out_dtype)
            np.copyto(counts, out, casting="unsafe")
            return counts
        if self.act is not None:
            self.act.apply_float(out)
        return out

    def describe(self) -> str:
        m = self.lin
        tail = "none" if self.act is None else self.act.describe()
        rep = f"{self.out_dtype.name}-counts" if self.counts_rep is not None else self.dtype.name
        return f"linear({m.in_features}→{m.out_features}) + {tail} :: {rep}"

    def summarize(self) -> StepIR:
        """Declared IR: flat float linear, optionally emitting counts."""
        return StepIR(
            self.index, self.kind, self.describe(),
            layouts_in=("flat",), layout_out="flat",
            out_dtype=self.out_dtype.name,
            produces_top=(int(self.counts_rep.top) if self.counts_rep is not None else None),
            workspaces={"in": self.dtype.name, "mat": self.dtype.name,
                        "c": self.out_dtype.name},
        )


def _grid_codes(module: Module) -> Optional[Tuple[np.ndarray, float, int]]:
    """Integer weight codes if the layer's weights sit on a clustering grid."""
    scale = getattr(module, "_grid_scale", None)
    bits = getattr(module, "_grid_bits", None)
    if scale is None or bits is None or scale <= 0:
        return None
    codes = module.weight.data * (2 ** bits) / scale
    rounded = np.rint(codes)
    if not np.allclose(codes, rounded, atol=1e-6):
        return None
    if np.abs(rounded).max(initial=0) > 2 ** (bits - 1):
        return None
    return rounded, float(scale), int(bits)


class _IntGemmMixin:
    """Shared integer-GEMM machinery for conv/linear fast-path steps."""

    def _init_int(self, module: Module, codes: np.ndarray, scale: float, bits: int,
                  rep_in: CountsRep, act: Optional[ActSpec], config) -> None:
        oc = codes.shape[0]
        k = codes.shape[1]
        # Exact-carrier choice: every partial sum must be representable.
        bound = k * rep_in.top * (2 ** (bits - 1))
        self.carrier = np.dtype(np.float32) if bound < 2 ** 24 else np.dtype(np.float64)
        self.codes_t = np.ascontiguousarray(codes.T, dtype=self.carrier)  # (K, oc)
        self.alpha = rep_in.value_scale * scale / float(2 ** bits)
        w_rowsum = module.weight.data.reshape(oc, -1).sum(axis=1)
        bias = 0.0 if module.bias is None else module.bias.data
        self.beta = bias + rep_in.offset * w_rowsum  # (oc,) float64
        self.act = act
        # Declared-IR metadata for the static plan verifier (PL601 reproves
        # the carrier/accumulator bounds from these, independently).
        self.in_top = int(rep_in.top)
        self.weight_bits = int(bits)
        # Honest describe() metadata: what actually flows through the GEMM.
        self.in_dtype = _counts_dtype(rep_in.top)
        self.code_dtype = np.dtype(np.int8) if bits <= 8 else np.dtype(np.int16)
        self.counts_rep = (
            CountsRep(act.gain, 0.0, int(act.top), "act")
            if act is not None and act.bits is not None else None
        )
        self.out_dtype = (
            _counts_dtype(self.counts_rep.top) if self.counts_rep is not None
            else np.dtype(np.float64)
        )
        self.shift: Optional[int] = None
        if self.counts_rep is not None:
            # Fold rescale and quantize into one affine pass:
            #   counts = clip(⌊gain·(α·acc + β) + ½⌋, 0, top)
            #          = clip(⌊(α·gain)·acc + (β·gain + ½)⌋, 0, top)
            self.q_scale = self.alpha * act.gain
            self.q_offset = self.beta * act.gain + 0.5
            if getattr(config, "int_path", "auto") == "shift":
                self._init_shift(bound)
        self.config = config
        self.gemm_runs = 0
        self.pruned_runs = 0
        self.last_density = 1.0

    def _init_shift(self, bound: float) -> None:
        """Derive the pure-shift requantize parameters (engine_shift mode).

        Requires ``q_scale`` to sit exactly on the power-of-two grid —
        :func:`repro.core.pow2.snap_scales_pow2` arranges that at
        plan-build time.  ``shift_requantize`` then replaces the per-
        element multiply with an arithmetic right shift; the rounding
        term ``+½`` and the folded bias/offset live in the pre-shift
        integer offset ``⌊q_offset · 2^shift⌋``.
        """
        exact = float(-np.log2(self.q_scale)) if self.q_scale > 0 else float("nan")
        shift = int(np.rint(exact)) if np.isfinite(exact) else -1
        if not np.isfinite(exact) or abs(exact - shift) > 1e-9 or not 0 <= shift <= 62:
            raise PlanError(
                f"requantize scale {self.q_scale!r} is not on the power-of-two "
                "grid; snap the layer scales (repro.core.pow2.snap_scales_pow2) "
                "before requesting int_path='shift'"
            )
        offsets = np.floor(np.asarray(self.q_offset, dtype=np.float64) * (2.0 ** shift))
        worst = bound + float(np.max(np.abs(offsets)))
        self.acc_int_dtype = (
            np.dtype(np.int32) if worst < 2 ** 31 else np.dtype(np.int64)
        )
        self.shift = shift
        self.shift_offsets = offsets.astype(self.acc_int_dtype)

    def _int_ir(self, layouts_in: Tuple[str, ...], layout_out: str,
                workspaces: Dict[str, Optional[str]]) -> StepIR:
        """Declared-IR fields common to every integer GEMM step."""
        return StepIR(
            self.index, self.kind, self.describe(),
            layouts_in=layouts_in, layout_out=layout_out,
            out_dtype=self.out_dtype.name,
            consumes_top=self.in_top,
            produces_top=(
                int(self.counts_rep.top) if self.counts_rep is not None else None
            ),
            carrier=self.carrier.name,
            acc_dtype=(self.acc_int_dtype.name if self.shift is not None else None),
            reduction_k=int(self.codes_t.shape[0]),
            weight_bits=self.weight_bits,
            codes=self.codes_t.T,
            q_scale=(float(self.q_scale) if self.counts_rep is not None else None),
            shift=self.shift,
            shift_offsets_absmax=(
                float(np.max(np.abs(self.shift_offsets)))
                if self.shift is not None else None
            ),
            workspaces=workspaces,
        )

    def _int_workspaces(self, *tags: str) -> Dict[str, Optional[str]]:
        """Carrier workspaces for ``tags`` plus the shared epilogue buffers."""
        ws: Dict[str, Optional[str]] = {tag: self.carrier.name for tag in tags}
        ws["y"] = "float64"
        if self.shift is not None:
            ws["acci"] = self.acc_int_dtype.name
        return ws

    def _gemm_label(self) -> str:
        """Honest dtype summary: logical operands @ the real BLAS carrier."""
        label = f"{self.in_dtype.name}·{self.code_dtype.name} @ {self.carrier.name}"
        if self.shift is not None:
            label += f", acc={self.acc_int_dtype.name} >>{self.shift}"
        return label

    def _gemm(self, cols: np.ndarray, pool: BufferPool, key) -> np.ndarray:
        """``cols @ codes_t`` with optional exact all-zero-column pruning."""
        self.gemm_runs += 1
        k = cols.shape[1]
        cfg = self.config
        if cfg.exploit_sparsity and k >= cfg.min_sparsity_columns:
            # Cheap sampled gate first: the exact full-matrix scan only
            # runs when a row sample suggests pruning will pay for it.
            sample = cols[: min(cols.shape[0], 256)]
            if float(sample.any(axis=0).mean()) <= cfg.sparsity_max_density:
                nonzero = cols.any(axis=0)
                self.last_density = float(nonzero.mean())
                if self.last_density <= cfg.sparsity_max_density:
                    self.pruned_runs += 1
                    used = np.flatnonzero(nonzero)
                    # Dropped columns are exactly zero in every row, so the
                    # pruned integer GEMM is exact, not approximate.
                    return np.ascontiguousarray(cols[:, used]) @ self.codes_t[used]
        acc = pool.get((key, "acc"), (cols.shape[0], self.codes_t.shape[1]), self.carrier)
        np.matmul(cols, self.codes_t, out=acc)
        return acc

    def _rescale(self, acc: np.ndarray, pool: BufferPool, key) -> np.ndarray:
        y = pool.get((key, "y"), acc.shape, np.float64)
        if self.counts_rep is not None:
            # Fused affine + quantize (see _init_int).  The caller's
            # truncating cast into the counts buffer supplies the floor.
            np.multiply(acc, self.q_scale, out=y, casting="unsafe")
            y += self.q_offset
            np.clip(y, 0.0, self.act.top, out=y)
        else:
            np.multiply(acc, self.alpha, out=y, casting="unsafe")
            y += self.beta
            if self.act is not None:
                self.act.apply_float(y)
        return y


class LegacyIntConvStep(Step, _IntGemmMixin):
    """PR2-era integer conv kept for same-machine A/B benchmarking.

    Works channel-major: activations flow as ``(C, B, H, W)``, the im2col
    workspace is ``(K, B·oh·ow)`` filled by K contiguous slice copies, and
    the GEMM is ``codes (oc, K) @ cols`` — so the output ``(oc, B, oh, ow)``
    feeds the next pool/conv with no inter-layer transpose at all.  Only
    exact-integer arithmetic is reordered; values are unchanged.

    Selected via ``EngineConfig(int_kernels="legacy")``; the default is the
    fused :class:`IntConvStep` below.  Does not implement the shift
    epilogue (``int_path="shift"`` requires the fused kernels).
    """

    kind = "conv2d-int"
    channel_major_out = True

    def __init__(self, index: int, conv: Conv2d, codes: np.ndarray, scale: float,
                 bits: int, rep_in: CountsRep, act: Optional[ActSpec], config,
                 channel_major_in: bool) -> None:
        Step.__init__(self, index)
        self.conv = conv
        self.channel_major_in = channel_major_in
        self._init_int(conv, codes.reshape(conv.out_channels, -1), scale, bits,
                       rep_in, act, config)
        self.codes_mat = np.ascontiguousarray(self.codes_t.T)  # (oc, K)
        self.beta_col = (
            self.beta.reshape(-1, 1) if isinstance(self.beta, np.ndarray) else self.beta
        )
        if self.counts_rep is not None:
            self.q_offset_col = (
                self.q_offset.reshape(-1, 1)
                if isinstance(self.q_offset, np.ndarray) else self.q_offset
            )
        self.pool_k: Optional[int] = None
        self.pool_s: Optional[int] = None

    def fuse_maxpool(self, mp: MaxPool2d) -> None:
        """Absorb a following max pool: pooling the raw accumulator commutes
        with the per-channel affine + quantize (both monotone in acc), so the
        rescale touches k²× fewer elements and stays bit-exact."""
        self.pool_k = mp.kernel_size
        self.pool_s = mp.stride

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        m = self.conv
        if self.channel_major_in:
            c, b, h, w = x.shape
        else:
            b, c, h, w = x.shape
        k, s, p = m.kernel_size, m.stride, m.padding
        xf = pool.get((self.index, "xf"), (c, b, h + 2 * p, w + 2 * p), self.carrier)
        if p:
            xf.fill(0)  # zero counts are exact zero values (offset-free rep)
        target = xf[:, :, p : p + h, p : p + w] if p else xf
        np.copyto(target, x if self.channel_major_in else x.transpose(1, 0, 2, 3),
                  casting="unsafe")
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        cols = pool.get((self.index, "cols"), (c * k * k, b, oh, ow), self.carrier)
        # One grouped copy per kernel offset: row ci·k² + ki·k + kj of cols is
        # cols_v[ci, ki, kj], matching the (oc, c·k·k) codes layout.
        cols_v = cols.reshape(c, k, k, b, oh, ow)
        for ki in range(k):
            for kj in range(k):
                np.copyto(
                    cols_v[:, ki, kj],
                    xf[:, :, ki : ki + (oh - 1) * s + 1 : s,
                       kj : kj + (ow - 1) * s + 1 : s],
                )
        acc = self._gemm_rows(cols.reshape(c * k * k, -1), pool)
        if self.pool_k is not None:
            accv = acc.reshape(m.out_channels, b, oh, ow)
            pk, ps = self.pool_k, self.pool_s
            ph = (oh - pk) // ps + 1
            pw = (ow - pk) // ps + 1
            pacc = pool.get((self.index, "pacc"), (m.out_channels, b, ph, pw),
                            self.carrier)
            np.copyto(pacc, accv[..., : (ph - 1) * ps + 1 : ps,
                                 : (pw - 1) * ps + 1 : ps])
            for pi in range(pk):
                for pj in range(pk):
                    if pi == 0 and pj == 0:
                        continue
                    np.maximum(
                        pacc,
                        accv[..., pi : pi + (ph - 1) * ps + 1 : ps,
                             pj : pj + (pw - 1) * ps + 1 : ps],
                        out=pacc,
                    )
            acc = pacc.reshape(m.out_channels, -1)
            oh, ow = ph, pw
        y = pool.get((self.index, "y"), acc.shape, np.float64)
        if self.counts_rep is not None:
            # Fused affine + quantize (see _init_int).  No explicit floor:
            # after the clip y is non-negative, so the truncating cast into
            # the integer counts buffer below IS the floor.
            np.multiply(acc, self.q_scale, out=y, casting="unsafe")
            y += self.q_offset_col
            np.clip(y, 0.0, self.act.top, out=y)
        else:
            np.multiply(acc, self.alpha, out=y, casting="unsafe")
            y += self.beta_col
            if self.act is not None:
                self.act.apply_float(y)
        out = pool.get((self.index, "out"), (m.out_channels, b, oh, ow), self.out_dtype)
        np.copyto(out, y.reshape(m.out_channels, b, oh, ow), casting="unsafe")
        return out

    def _gemm_rows(self, cols: np.ndarray, pool: BufferPool) -> np.ndarray:
        """``codes (oc, K) @ cols (K, N)``, pruning all-zero *rows* of cols."""
        self.gemm_runs += 1
        cfg = self.config
        if cfg.exploit_sparsity and cols.shape[0] >= cfg.min_sparsity_columns:
            sample = cols[:, : min(cols.shape[1], 256)]
            if float(sample.any(axis=1).mean()) <= cfg.sparsity_max_density:
                nonzero = cols.any(axis=1)
                self.last_density = float(nonzero.mean())
                if self.last_density <= cfg.sparsity_max_density:
                    self.pruned_runs += 1
                    used = np.flatnonzero(nonzero)
                    # Dropped rows are exactly zero everywhere: exact prune.
                    return np.ascontiguousarray(self.codes_mat[:, used]) @ cols[used]
        acc = pool.get((self.index, "acc"), (self.codes_mat.shape[0], cols.shape[1]),
                       self.carrier)
        np.matmul(self.codes_mat, cols, out=acc)
        return acc

    def describe(self) -> str:
        c = self.conv
        tail = "none" if self.act is None else self.act.describe()
        if self.pool_k is not None:
            tail += f" + maxpool(k={self.pool_k}, s={self.pool_s})"
        return (f"conv2d({c.in_channels}→{c.out_channels}, k={c.kernel_size}) "
                f"+ {tail} :: int-gemm[{self._gemm_label()}] → {self.out_dtype.name}"
                " [channel-major]")

    def summarize(self) -> StepIR:
        """Declared IR: channel-major integer conv (no shift epilogue)."""
        ws = self._int_workspaces("xf", "cols", "acc", "pacc")
        ws["out"] = self.out_dtype.name
        ir = self._int_ir(
            ("cmajor",) if self.channel_major_in else ("batch",), "cmajor", ws)
        if self.pool_k is not None:
            ir.fused_pool = (self.pool_k, self.pool_s)
        return ir


class LegacyIntLinearStep(Step, _IntGemmMixin):
    """PR2-era integer linear kept for same-machine A/B benchmarking."""

    kind = "linear-int"

    def __init__(self, index: int, lin: Linear, codes: np.ndarray, scale: float,
                 bits: int, rep_in: CountsRep, act: Optional[ActSpec], config) -> None:
        Step.__init__(self, index)
        self.lin = lin
        self._init_int(lin, codes, scale, bits, rep_in, act, config)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        cols = pool.get((self.index, "in"), x.shape, self.carrier)
        np.copyto(cols, x, casting="unsafe")
        acc = self._gemm(cols, pool, self.index)
        y = self._rescale(acc, pool, self.index)
        if self.counts_rep is not None:
            counts = pool.get((self.index, "c"), y.shape, self.out_dtype)
            np.copyto(counts, y, casting="unsafe")
            return counts
        return y

    def describe(self) -> str:
        m = self.lin
        tail = "none" if self.act is None else self.act.describe()
        return (f"linear({m.in_features}→{m.out_features}) + {tail} "
                f":: int-gemm[{self._gemm_label()}] → {self.out_dtype.name}")

    def summarize(self) -> StepIR:
        """Declared IR: flat integer linear (legacy, no shift epilogue)."""
        ws = self._int_workspaces("in", "acc")
        ws["c"] = self.out_dtype.name
        return self._int_ir(("flat",), "flat", ws)


class IntConvStep(Step, _IntGemmMixin):
    """Fused integer conv: cached im2col program → int GEMM → one epilogue.

    Three wins over :class:`LegacyIntConvStep`:

    - **Cached lowering.** The im2col copy is compiled once per buffer
      pairing into a list of ``(dst_view, src_view)`` slice pairs; each
      replay is pure ``np.copyto`` over precomputed views (no padded
      intermediate is ever materialized — padded convs pre-zero the
      workspace and copy only the in-image tap ranges).
    - **Batch-last lowering, spatial-panel GEMM.** Activations flow
      batch-LAST: the input is staged once per run into ``(c, h, w, b)``
      with a single contiguous cast (counts → carrier), and the tap-major
      workspace is ``(c·k·k, oh·ow, tile)``.  Because ``b`` is the
      trailing axis, every window-tap copy runs contiguous over the whole
      tile — inner memcpy runs of ``tile`` elements instead of ``ow``,
      which measures ~3× faster than batch-major im2col (the copy is
      iteration-overhead-bound, not bandwidth-bound).  The GEMM is one
      batched ``codes (oc, K) @ cols.transpose(1, 0, 2)`` over ``oh·ow``
      spatial panels ``(K, tile)`` — strided views BLAS consumes without
      packing copies — and the epilogue writes ``(oc, ph, pw, b)``, so
      the *next* conv's staging is again a contiguous cast.  The batch is
      processed in tiles of ``_BLOCK`` images to bound the workspace.
    - **Pool-then-requantize.** A following max pool is absorbed and runs
      on the raw accumulator (max commutes with the monotone epilogue), so
      the per-element requantize touches k²× fewer elements and no
      full-resolution activation exists.

    The epilogue is either the fused multiply ``clip(⌊q_scale·acc +
    q_offset⌋, 0, top)`` or, in ``int_path="shift"`` mode, the
    multiplier-less :func:`shift_requantize`.  Both are bit-exact
    reorderings of the graph's relu→quantize on exact-integer accumulators.
    """

    kind = "conv2d-int"

    #: Batch tile.  Tiling exists to bound the im2col workspace for very
    #: large batches (measured: smaller cache-sized tiles are *not* faster
    #: here — BLAS prefers the long batch of panels), so the tile is
    #: deliberately generous.
    _BLOCK = 128

    def __init__(self, index: int, conv: Conv2d, codes: np.ndarray, scale: float,
                 bits: int, rep_in: CountsRep, act: Optional[ActSpec], config,
                 layout_in: str = "batch") -> None:
        Step.__init__(self, index)
        self.conv = conv
        self.layout_in = layout_in
        self._init_int(conv, codes.reshape(conv.out_channels, -1), scale, bits,
                       rep_in, act, config)
        if self.counts_rep is None:
            raise PlanError("integer conv requires a fused M-bit quantizer")
        self.codes_mat = np.ascontiguousarray(self.codes_t.T)  # (oc, K)
        self.layout_out = "blast"
        # Per-channel vectors broadcast over batch-last (ph, pw, oc, tile).
        ax = (1, 1, -1, 1)
        self.q_off_b = (
            self.q_offset.reshape(ax)
            if isinstance(self.q_offset, np.ndarray) else self.q_offset
        )
        if self.shift is not None:
            ofs = self.shift_offsets
            self.shift_off_b = ofs.reshape(ax) if ofs.ndim else ofs
        self.pool_k: Optional[int] = None
        self.pool_s: Optional[int] = None
        self._program: Optional[tuple] = None

    def fuse_maxpool(self, mp: MaxPool2d) -> None:
        """Absorb a following max pool: pooling the raw accumulator commutes
        with the per-channel affine + quantize (both monotone in acc), so the
        requantize touches k²× fewer elements and stays bit-exact."""
        self.pool_k = mp.kernel_size
        self.pool_s = mp.stride

    def _src_view(self, x: np.ndarray) -> np.ndarray:
        """One ``(C, H, W, B)`` source view serves every input convention."""
        if self.layout_in == "blast":
            return x
        if self.layout_in == "cmajor":
            return x.transpose(0, 2, 3, 1)
        return x.transpose(1, 2, 3, 0)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        m = self.conv
        if self.layout_in == "blast":
            c, h, w, b = x.shape
        elif self.layout_in == "cmajor":
            c, b, h, w = x.shape
        else:
            b, c, h, w = x.shape
        k, s, p = m.kernel_size, m.stride, m.padding
        oc = m.out_channels
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        self.gemm_runs += 1
        if self.pool_k is not None:
            ph = (oh - self.pool_k) // self.pool_s + 1
            pw = (ow - self.pool_k) // self.pool_s + 1
        else:
            ph, pw = oh, ow
        nb = min(b, self._BLOCK)
        tb = b % nb
        # Stage the counts into the carrier dtype with ONE cast (contiguous
        # when the producer is another fused conv); the per-tap window
        # copies below then run dtype-preserving with batch-contiguous
        # inner runs — plain memcpy loops.  Staging also anchors the
        # compiled program on pool-stable buffers only, so it survives
        # callers that alternate input arrays of the same shape.
        sbuf = pool.get((self.index, "src"), (c, h, w, b), self.carrier)
        cols = pool.get((self.index, "cols", nb), (c * k * k, oh * ow, nb),
                        self.carrier)
        tcols = (
            pool.get((self.index, "cols", tb), (c * k * k, oh * ow, tb),
                     self.carrier)
            if tb else None
        )
        prog = self._program
        if (prog is None or prog[0] is not sbuf or prog[1] is not cols
                or prog[2] is not tcols):
            prog = self._build_program(sbuf, cols, tcols, b, c, h, w, oh, ow)
            self._program = prog
        np.copyto(sbuf, self._src_view(x), casting="unsafe")
        out = pool.get((self.index, "out"), (oc, ph, pw, b), self.out_dtype)
        for s0, s1, cbuf, bview, pairs in prog[3]:
            if p:
                cbuf.fill(0)  # padding injects exact zeros (offset-free rep)
            for dst, src in pairs:
                np.copyto(dst, src, casting="unsafe")
            blen = s1 - s0
            acc = pool.get((self.index, "acc", blen), (oh * ow, oc, blen),
                           self.carrier)
            np.matmul(self.codes_mat, bview, out=acc)
            accv = acc.reshape(oh, ow, oc, blen)
            if self.pool_k is not None:
                accv = self._fused_pool(accv, pool, blen)
            outv = out[..., s0:s1].transpose(1, 2, 0, 3)  # (ph, pw, oc, tile)
            self._epilogue(accv, pool, outv, blen)
        return out

    def _build_program(self, sbuf: np.ndarray, cols: np.ndarray,
                       tcols: Optional[np.ndarray], b: int, c: int, h: int,
                       w: int, oh: int, ow: int) -> tuple:
        """Compile the batch-tiled im2col into cached ``(dst, src)`` pairs.

        Runs outside the replay hot path — once per concrete (staged input,
        workspace) buffer pairing, which the pool keeps stable per batch
        shape; validity is checked by array identity in :meth:`run`.  Each
        tile lowers into the tap-major workspace ``(c·k·k, oh·ow, tile)``:
        an unpadded conv needs exactly one pair per tile (a transposed
        sliding-window view over the staged input), and because dst and src
        both trail with the batch axis, every inner copy run is ``tile``
        elements long and padded-conv tap pairs need no transpose at all.
        Each block also carries its ``(oh·ow, K, tile)`` transpose view —
        the strided spatial panels the batched GEMM consumes directly.
        """
        m = self.conv
        k, s, p = m.kernel_size, m.stride, m.padding
        win = None
        if p == 0:
            win = np.lib.stride_tricks.sliding_window_view(sbuf, (k, k),
                                                           axis=(1, 2))
            # (c, oh, ow, b, k, k) → (c, k, k, oh, ow, b), tap-major.
            win = win[:, ::s, ::s].transpose(0, 4, 5, 1, 2, 3)
        blocks = []
        nb = cols.shape[2]
        for s0 in range(0, b, nb):
            s1 = min(b, s0 + nb)
            blen = s1 - s0
            cbuf = cols if blen == nb else tcols
            cols_v = cbuf.reshape(c, k, k, oh, ow, blen)
            bview = cbuf.transpose(1, 0, 2)
            if p == 0:
                pairs = [(cols_v, win[..., s0:s1])]
                blocks.append((s0, s1, cbuf, bview, pairs))
                continue
            srcb = sbuf[..., s0:s1]
            pairs = []
            for ki in range(k):
                o0h = max(0, -((ki - p) // s))
                o1h = min(oh, (h - 1 - ki + p) // s + 1)
                i0h = ki + o0h * s - p
                for kj in range(k):
                    o0w = max(0, -((kj - p) // s))
                    o1w = min(ow, (w - 1 - kj + p) // s + 1)
                    i0w = kj + o0w * s - p
                    if o1h <= o0h or o1w <= o0w:
                        continue  # tap never lands in-image; stays zero
                    sv = srcb[:, i0h : i0h + (o1h - o0h - 1) * s + 1 : s,
                              i0w : i0w + (o1w - o0w - 1) * s + 1 : s]
                    pairs.append((cols_v[:, ki, kj, o0h:o1h, o0w:o1w], sv))
            blocks.append((s0, s1, cbuf, bview, pairs))
        return (sbuf, cols, tcols, blocks)

    @staticmethod
    def _sep_max(wins: list, out: np.ndarray) -> np.ndarray:
        if len(wins) == 1:
            np.copyto(out, wins[0])
        else:
            np.maximum(wins[0], wins[1], out=out)
            for extra in wins[2:]:
                np.maximum(out, extra, out=out)
        return out

    def _fused_pool(self, accv: np.ndarray, pool: BufferPool,
                    blk: Optional[int]) -> np.ndarray:
        """Max pool the raw accumulator, separably: width first, then height.

        ``2k`` strided maxima instead of ``k²`` — the second stage reads the
        already width-reduced buffer, so the total traffic drops from
        ``k²·|out|`` to ``k·(|mid| + |out|)``.  Max is associative, so the
        staged maxima equal the windowed maxima exactly.  The accumulator
        is spatial-major ``(oh, ow, oc, tile)``, so pooling slices the two
        *leading* axes.
        """
        pk, ps = self.pool_k, self.pool_s
        oh, ow, *tail = accv.shape
        ph = (oh - pk) // ps + 1
        pw = (ow - pk) // ps + 1
        mid = pool.get((self.index, "pmid", blk), (oh, pw, *tail), self.carrier)
        self._sep_max(
            [accv[:, pj : pj + (pw - 1) * ps + 1 : ps] for pj in range(pk)],
            mid)
        pacc = pool.get((self.index, "pacc", blk), (ph, pw, *tail), self.carrier)
        return self._sep_max(
            [mid[pi : pi + (ph - 1) * ps + 1 : ps] for pi in range(pk)],
            pacc)

    def _epilogue(self, accv: np.ndarray, pool: BufferPool, out: np.ndarray,
                  blk: Optional[int]) -> np.ndarray:
        if self.shift is not None:
            acci = pool.get((self.index, "acci", blk), accv.shape,
                            self.acc_int_dtype)
            # Exact: the carrier holds integers, so the truncating cast is
            # the identity on values.
            np.copyto(acci, accv, casting="unsafe")
            return shift_requantize(acci, self.shift, self.shift_off_b,
                                    self.counts_rep.top, out)
        y = pool.get((self.index, "y", blk), accv.shape, np.float64)
        # Fused affine + quantize (see _init_int).  No explicit floor: after
        # the clip y is non-negative, so the truncating cast into ``out`` IS
        # the floor.
        np.multiply(accv, self.q_scale, out=y, casting="unsafe")
        np.add(y, self.q_off_b, out=y)
        np.clip(y, 0.0, self.act.top, out=out, casting="unsafe")
        return out

    def describe(self) -> str:
        c = self.conv
        tail = "none" if self.act is None else self.act.describe()
        if self.pool_k is not None:
            tail += f" + maxpool(k={self.pool_k}, s={self.pool_s})"
        return (f"conv2d({c.in_channels}→{c.out_channels}, k={c.kernel_size}) "
                f"+ {tail} :: int-gemm[{self._gemm_label()}] → {self.out_dtype.name}"
                f" [batch-last im2col ×{self._BLOCK}]")

    def summarize(self) -> StepIR:
        """Declared IR: fused batch-last conv, including its copy program.

        The cached im2col ``(dst, src)`` view pairs are exposed as
        :class:`ViewIR` byte extents so the verifier can prove the replay
        copies alias-free (PL602) without re-deriving the tap geometry.
        """
        ws = self._int_workspaces("src", "cols", "acc", "pmid", "pacc")
        ws["out"] = self.out_dtype.name
        ir = self._int_ir((self.layout_in,), self.layout_out, ws)
        if self.pool_k is not None:
            ir.fused_pool = (self.pool_k, self.pool_s)
        if self._program is not None:
            ir.copy_views = [
                (_view_ir(dst), _view_ir(src))
                for _, _, _, _, pairs in self._program[3]
                for dst, src in pairs
            ]
        return ir


class IntLinearStep(Step, _IntGemmMixin):
    """Integer fast-path linear with the fused (multiply or shift) epilogue."""

    kind = "linear-int"

    def __init__(self, index: int, lin: Linear, codes: np.ndarray, scale: float,
                 bits: int, rep_in: CountsRep, act: Optional[ActSpec], config) -> None:
        Step.__init__(self, index)
        self.lin = lin
        self._init_int(lin, codes, scale, bits, rep_in, act, config)
        if self.counts_rep is None:
            raise PlanError("integer linear requires a fused M-bit quantizer")

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        cols = pool.get((self.index, "in"), x.shape, self.carrier)
        np.copyto(cols, x, casting="unsafe")
        acc = self._gemm(cols, pool, self.index)
        out = pool.get((self.index, "c"), acc.shape, self.out_dtype)
        if self.shift is not None:
            acci = pool.get((self.index, "acci"), acc.shape, self.acc_int_dtype)
            np.copyto(acci, acc, casting="unsafe")
            return shift_requantize(acci, self.shift, self.shift_offsets,
                                    self.counts_rep.top, out)
        y = pool.get((self.index, "y"), acc.shape, np.float64)
        np.multiply(acc, self.q_scale, out=y, casting="unsafe")
        np.add(y, self.q_offset, out=y)
        np.clip(y, 0.0, self.act.top, out=out, casting="unsafe")
        return out

    def describe(self) -> str:
        m = self.lin
        tail = "none" if self.act is None else self.act.describe()
        return (f"linear({m.in_features}→{m.out_features}) + {tail} "
                f":: int-gemm[{self._gemm_label()}] → {self.out_dtype.name}")

    def summarize(self) -> StepIR:
        """Declared IR: flat integer linear with multiply/shift epilogue."""
        ws = self._int_workspaces("in", "acc")
        ws["c"] = self.out_dtype.name
        return self._int_ir(("flat",), "flat", ws)


class SpikingConvStep(Step):
    """Analog-crossbar conv; reads the live ``CrossbarArray`` every run so
    fault injection and remediation reprogramming take effect immediately."""

    kind = "spiking-conv2d"

    def __init__(self, index: int, module: SpikingConv2d, act: Optional[ActSpec]) -> None:
        super().__init__(index)
        self.module = module
        self.act = act

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        m = self.module
        b = x.shape[0]
        cols, oh, ow = _im2col_into(
            pool, self.index, x, m.kernel_size, m.stride, m.padding,
            np.float64, extra_cols=m._n_bias_rows,
        )
        values = m.array.multiply_analog(cols)
        values *= m.scale / float(2 ** m.bits)
        if self.act is not None:
            self.act.apply_float(values)
        return _to_nchw(pool, self.index, values, b, oh, ow, m.out_channels, np.float64)

    def describe(self) -> str:
        m = self.module
        tail = "none" if self.act is None else self.act.describe()
        return (f"spiking-conv2d({m.in_channels}→{m.out_channels}, k={m.kernel_size}) "
                f"+ {tail} :: analog/f64")

    def summarize(self) -> StepIR:
        """Declared IR: batch-major analog conv on float64 values."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=("batch",), layout_out="batch",
                      out_dtype="float64",
                      workspaces={"pad": None, "cols": "float64", "nchw": "float64"})


class SpikingLinearStep(Step):
    kind = "spiking-linear"

    def __init__(self, index: int, module: SpikingLinear, act: Optional[ActSpec]) -> None:
        super().__init__(index)
        self.module = module
        self.act = act

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        m = self.module
        data = x
        if m._n_bias_rows:
            buf = pool.get(self.index, (x.shape[0], m.in_features + m._n_bias_rows),
                           np.float64)
            buf[:, : m.in_features] = x
            buf[:, m.in_features :] = 1.0
            data = buf
        values = m.array.multiply_analog(data)
        values *= m.scale / float(2 ** m.bits)
        if self.act is not None:
            self.act.apply_float(values)
        return values

    def describe(self) -> str:
        m = self.module
        tail = "none" if self.act is None else self.act.describe()
        return (f"spiking-linear({m.in_features}→{m.out_features}) "
                f"+ {tail} :: analog/f64")

    def summarize(self) -> StepIR:
        """Declared IR: flat analog linear on float64 values."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=("flat",), layout_out="flat",
                      out_dtype="float64", workspaces={"": "float64"})


class MaxPoolStep(Step):
    """Max pool over the two trailing axes (so any leading layout works).

    One strided ``np.maximum`` per kernel offset — k² passes over the
    output instead of a reduction over a 6-D window view, which is an
    order of magnitude faster and takes the same maxima exactly.
    """

    kind = "maxpool"

    def __init__(self, index: int, module: MaxPool2d) -> None:
        super().__init__(index)
        self.kernel = module.kernel_size
        self.stride = module.stride

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        *lead, h, w = x.shape
        k, s = self.kernel, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        out = pool.get(self.index, (*lead, oh, ow), x.dtype)
        np.copyto(out, x[..., : (oh - 1) * s + 1 : s, : (ow - 1) * s + 1 : s])
        for i in range(k):
            for j in range(k):
                if i == 0 and j == 0:
                    continue
                region = x[..., i : i + (oh - 1) * s + 1 : s, j : j + (ow - 1) * s + 1 : s]
                np.maximum(out, region, out=out)
        return out

    def describe(self) -> str:
        return f"maxpool(k={self.kernel}, s={self.stride})"

    def summarize(self) -> StepIR:
        """Declared IR: pools trailing axes — spatial-last layouts only."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=("batch", "cmajor"), rep_passthrough=True,
                      workspaces={"": None})


class AvgPoolStep(Step):
    kind = "avgpool"

    def __init__(self, index: int, module: AvgPool2d, dtype) -> None:
        super().__init__(index)
        self.kernel = module.kernel_size
        self.stride = module.stride
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        b, c, h, w = x.shape
        k, s = self.kernel, self.stride
        oh = (h - k) // s + 1
        ow = (w - k) // s + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
        windows = windows[:, :, ::s, ::s, :, :]
        out = pool.get(self.index, (b, c, oh, ow), self.dtype)
        np.mean(windows, axis=(-2, -1), out=out)
        return out

    def describe(self) -> str:
        return f"avgpool(k={self.kernel}, s={self.stride})"

    def summarize(self) -> StepIR:
        """Declared IR: batch-major average pooling on float values."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=("batch",), layout_out="batch",
                      out_dtype=self.dtype.name, workspaces={"": self.dtype.name})


class GlobalAvgPoolStep(Step):
    kind = "gap"

    def __init__(self, index: int, dtype) -> None:
        super().__init__(index)
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        out = pool.get(self.index, x.shape[:2], self.dtype)
        np.mean(x, axis=(2, 3), out=out)
        return out

    def summarize(self) -> StepIR:
        """Declared IR: batch-major in, flat (B, C) out."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=("batch",), layout_out="flat",
                      out_dtype=self.dtype.name, workspaces={"": self.dtype.name})


class BatchNormEvalStep(Step):
    """Inference-mode batchnorm (rarely survives deployment — BN is folded)."""

    kind = "batchnorm"

    def __init__(self, index: int, module: BatchNorm2d, dtype) -> None:
        super().__init__(index)
        self.module = module
        self.dtype = np.dtype(dtype)

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        m = self.module
        shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
        inv_std = 1.0 / np.sqrt(m.running_var + m.eps)
        buf = pool.get(self.index, x.shape, self.dtype)
        np.subtract(x, m.running_mean.reshape(shape), out=buf, casting="unsafe")
        buf *= inv_std.reshape(shape)
        buf *= m.gamma.data.reshape(shape)
        buf += m.beta.data.reshape(shape)
        return buf

    def summarize(self) -> StepIR:
        """Declared IR: per-channel affine, layout preserved."""
        return StepIR(self.index, self.kind, self.describe(),
                      out_dtype=self.dtype.name, workspaces={"": self.dtype.name})


class ChannelMajorToBatchStep(Step):
    """Restore batch-last ``(C, H, W, B)`` (fused int conv) or channel-major
    ``(C, B, H, W)`` (legacy int conv) activations to ``(B, C, H, W)``."""

    kind = "to-nchw"

    def __init__(self, index: int, layout: str = "cmajor") -> None:
        super().__init__(index)
        self.layout = layout

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        if self.layout == "blast":
            c, h, w, b = x.shape
            out = pool.get(self.index, (b, c, h, w), x.dtype)
            np.copyto(out, x.transpose(3, 0, 1, 2))
            return out
        c, b, h, w = x.shape
        out = pool.get(self.index, (b, c, h, w), x.dtype)
        np.copyto(out, x.transpose(1, 0, 2, 3))
        return out

    def summarize(self) -> StepIR:
        """Declared IR: restores the declared source layout to batch-major."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=(self.layout,), layout_out="batch",
                      rep_passthrough=True, workspaces={"": None})


class FlattenStep(Step):
    kind = "flatten"

    def __init__(self, index: int, layout: str = "batch") -> None:
        super().__init__(index)
        self.layout = layout

    def run(self, x: np.ndarray, pool: BufferPool) -> np.ndarray:
        if self.layout == "blast":
            b = x.shape[-1]
            out = pool.get(self.index, (b, x.size // b), x.dtype)
            np.copyto(out, x.reshape(-1, b).T)
            return out
        if self.layout == "cmajor":
            c, b = x.shape[:2]
            out = pool.get(self.index, (b, x.size // b), x.dtype)
            np.copyto(out.reshape(b, c, *x.shape[2:]), np.moveaxis(x, 0, 1))
            return out
        return np.ascontiguousarray(x).reshape(x.shape[0], -1)

    def summarize(self) -> StepIR:
        """Declared IR: flattens the declared source layout to (B, features)."""
        return StepIR(self.index, self.kind, self.describe(),
                      layouts_in=(self.layout,), layout_out="flat",
                      rep_passthrough=True, workspaces={"": None})


# ---------------------------------------------------------------------------
# Tracing
# ---------------------------------------------------------------------------

_ATOMIC = (
    Conv2d, Linear, BatchNorm2d, ReLU, MaxPool2d, AvgPool2d, GlobalAvgPool2d,
    Flatten, Dropout, Identity, QuantizedActivation, DynamicQuantizedActivation,
    InputQuantizer, SpikingConv2d, SpikingLinear,
)


def _atomic_modules(root: Module) -> List[Module]:
    found: List[Module] = []

    def visit(m: Module) -> None:
        if isinstance(m, _ATOMIC):
            found.append(m)
            return
        children = list(m._modules.values())
        if not children:
            raise PlanError(f"untraceable leaf module {type(m).__name__}")
        for child in children:
            visit(child)

    visit(root)
    return found


def trace_chain(module: Module, sample: np.ndarray) -> Tuple[List[Module], np.ndarray]:
    """Run one traced forward; return the atomic chain and its output.

    Raises :class:`PlanError` when the dataflow is not a linear chain (each
    atomic module consuming exactly the previous one's output) — residual
    and branching topologies fall back to the graph executor.
    """
    atoms = _atomic_modules(module)
    if not atoms:
        raise PlanError("module has no traceable layers")
    events: List[Tuple[Module, Tensor, Tensor]] = []

    def hook(mod: Module, x: Tensor, out: Tensor) -> None:
        events.append((mod, x, out))

    removers = [m.register_forward_hook(hook) for m in atoms]
    x0 = Tensor(np.asarray(sample, dtype=np.float64))
    try:
        with no_grad():
            out = module(x0)
    finally:
        for remove in removers:
            remove()

    prev: Tensor = x0
    ordered: List[Module] = []
    for mod, xin, xout in events:
        if xin is not prev:
            raise PlanError(
                f"{type(mod).__name__} does not consume the previous layer's "
                "output — dataflow is not a linear chain"
            )
        ordered.append(mod)
        prev = xout
    if prev is not out:
        raise PlanError("network output is not produced by the traced chain")
    return ordered, out.data


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------

_WEIGHT_TYPES = (Conv2d, Linear, SpikingConv2d, SpikingLinear)
_ACT_TYPES = (ReLU, QuantizedActivation, DynamicQuantizedActivation)


class ExecutionPlan:
    """A compiled flat program: ordered steps + their buffer pool."""

    def __init__(self, steps: Sequence[Step], pool: BufferPool, chain: Sequence[Module],
                 dtype, int_steps: int, int_path: str = "auto",
                 int_kernels: str = "fused") -> None:
        self.steps = list(steps)
        self.pool = pool
        self.dtype = np.dtype(dtype)
        self.int_steps = int_steps
        self.int_path = int_path
        self.int_kernels = int_kernels
        self._chain = list(chain)
        self._structure_sig = _structure_signature(self._chain)
        # Byte snapshots: staleness is checked on every engine run, and a
        # memcmp over the raw bytes is several times cheaper than an
        # elementwise array compare.
        self._weight_snaps = [
            (m, m.weight.data.shape, m.weight.data.tobytes(),
             None if getattr(m, "bias", None) is None else m.bias.data.tobytes())
            for m in self._chain if isinstance(m, (Conv2d, Linear))
        ]

    @property
    def uses_int_path(self) -> bool:
        return self.int_steps > 0

    def run(self, x: np.ndarray) -> np.ndarray:
        for step in self.steps:
            x = step.run(x, self.pool)
        return x

    def run_timed(self, x: np.ndarray, telemetry, model: str = "") -> np.ndarray:
        """Replay the plan recording a span and an op-class timing per step.

        Semantically identical to :meth:`run` — the same steps execute on
        the same pool; only clock reads (through the telemetry's injected
        clock) and metric writes are added.  Step histograms are keyed by
        ``kind`` (the op class: ``conv2d``, ``linear-int``, ...), and each
        step emits a ``plan.<kind>`` span parented under whatever span the
        caller holds open.  Instruments are resolved once per (plan,
        telemetry) pairing and cached, so the per-step overhead is two
        clock reads plus two lock-protected appends.
        """
        instruments = self._step_instruments(telemetry, model)
        clock = telemetry.clock
        tracer = telemetry.tracer
        for step, (hist, span_name, index) in zip(self.steps, instruments):
            t0 = clock()
            x = step.run(x, self.pool)
            t1 = clock()
            hist.observe(t1 - t0)
            tracer.record(span_name, t0, t1, index=index)
        return x

    def _step_instruments(self, telemetry, model: str) -> list:
        cache = getattr(self, "_obs_cache", None)
        if cache is None or cache[0] is not telemetry:
            instruments = [
                (
                    telemetry.registry.histogram(
                        "plan_step_seconds", help="Wall time of one plan step",
                        kind=step.kind, model=model,
                    ),
                    f"plan.{step.kind}",
                    step.index,
                )
                for step in self.steps
            ]
            self._obs_cache = (telemetry, instruments)
            return instruments
        return cache[1]

    def is_stale(self) -> bool:
        """True when the traced structure or any traced weight changed.

        Spiking layers read their crossbars live, so hardware reprogramming
        never stales a plan; software Conv2d/Linear weights are snapshotted
        at compile time (remediation or re-quantization mutates them in
        place, which must trigger a re-trace).
        """
        if _structure_signature(self._chain) != self._structure_sig:
            return True
        for module, w_shape, w_bytes, b_bytes in self._weight_snaps:
            w = module.weight.data
            if w.shape != w_shape or w.tobytes() != w_bytes:
                return True
            if b_bytes is not None and module.bias.data.tobytes() != b_bytes:
                return True
        return False

    def summarize(self) -> PlanIR:
        """The plan's declared IR: per-step contracts plus the traced pool.

        This is the surface :mod:`repro.check.plancheck` verifies.  Steps
        declare layouts, counts windows, GEMM geometry, workspace keys and
        copy-program views; the pool reports what tracing actually
        allocated — so the verifier can cross-examine declaration against
        reality without reaching into private step state.
        """
        buffers = []
        for key, shape, dtype, buf in self.pool.entries():
            owner, tag = _pool_key_owner(key)
            buffers.append(BufferIR(owner=owner, tag=tag, shape=shape,
                                    dtype=dtype.name, base=id(_base_array(buf)),
                                    nbytes=buf.nbytes))
        return PlanIR(steps=[step.summarize() for step in self.steps],
                      buffers=buffers, dtype=self.dtype.name,
                      int_steps=self.int_steps, int_path=self.int_path,
                      int_kernels=self.int_kernels)

    def describe(self) -> str:
        lines = [
            f"ExecutionPlan: {len(self.steps)} steps, dtype={self.dtype.name}, "
            f"int fast-path steps={self.int_steps}, pooled buffers={len(self.pool)}"
        ]
        for i, step in enumerate(self.steps):
            lines.append(f"  [{i}] {step.describe()}")
        return "\n".join(lines)


def _structure_signature(chain: Sequence[Module]) -> Tuple:
    sig = []
    for m in chain:
        entry: Tuple = (id(m), type(m).__name__, m.training)
        if isinstance(m, QuantizedActivation):
            entry += (m.bits, float(m.gain), m.enabled)
        if isinstance(m, InputQuantizer):
            entry += (m.bits, float(m.gain), float(m.offset))
        sig.append(entry)
    return tuple(sig)


def compile_plan(module: Module, sample: np.ndarray, config) -> ExecutionPlan:
    """Trace ``module`` and compile it into an :class:`ExecutionPlan`.

    ``config`` is an ``EngineConfig`` (duck-typed: dtype, int_path,
    exploit_sparsity, sparsity_max_density, min_sparsity_columns,
    verify_on_trace).  Raises :class:`PlanError` when the module cannot be
    traced or the compiled plan fails its trace-time verification.
    """
    chain, ref_out = trace_chain(module, sample)

    # Is the integer fast path worth attempting?  Only for chains with at
    # least one software weight layer on a clustering grid.
    int_mode = config.int_path != "off" and any(
        isinstance(m, (Conv2d, Linear)) and _grid_codes(m) is not None for m in chain
    )
    int_kernels = getattr(config, "int_kernels", "fused")
    if int_kernels == "legacy" and config.int_path == "shift":
        raise PlanError("the legacy int kernels do not implement the shift epilogue")
    conv_cls = LegacyIntConvStep if int_kernels == "legacy" else IntConvStep
    lin_cls = LegacyIntLinearStep if int_kernels == "legacy" else IntLinearStep
    # Any float arithmetic inside an int plan runs in float64 so the fast
    # path stays comparable to the graph executor at tie-breaking precision.
    dtype = np.dtype(np.float64) if int_mode else np.dtype(config.dtype)

    steps: List[Step] = []
    pool = BufferPool()
    rep: Optional[CountsRep] = FLOAT_REP
    # Int convs flow activations in whatever layout their GEMM scheme emits:
    # "blast" (C,H,W,B) for the fused kernels, "cmajor" (C,B,H,W) legacy.
    layout = "batch"
    int_steps = 0
    index = 0
    i = 0

    def restore_batch_major() -> None:
        nonlocal layout, index
        if layout != "batch":
            steps.append(ChannelMajorToBatchStep(index, layout))
            index += 1
            layout = "batch"

    def dequant_if_counts() -> None:
        nonlocal rep, index
        restore_batch_major()
        if rep is not None:
            steps.append(DequantStep(index, rep, dtype))
            index += 1
            rep = FLOAT_REP

    while i < len(chain):
        m = chain[i]
        fused_act: Optional[ActSpec] = None
        if isinstance(m, _WEIGHT_TYPES) and i + 1 < len(chain) and isinstance(chain[i + 1], _ACT_TYPES):
            fused_act = _act_spec(chain[i + 1])

        if isinstance(m, (BatchNorm2d, Dropout)) and m.training:
            raise PlanError(f"{type(m).__name__} is in training mode; plans are inference-only")

        if isinstance(m, (Identity, Dropout)):
            i += 1
            continue

        if isinstance(m, InputQuantizer):
            if int_mode:
                step = InputQuantCountsStep(index, m)
                rep = step.rep
            else:
                step = InputQuantFloatStep(index, m, dtype)
            steps.append(step)

        elif isinstance(m, (SpikingConv2d, SpikingLinear)):
            dequant_if_counts()
            cls = SpikingConvStep if isinstance(m, SpikingConv2d) else SpikingLinearStep
            steps.append(cls(index, m, fused_act))
            if fused_act is not None:
                i += 1  # the activation was fused

        elif isinstance(m, (Conv2d, Linear)):
            grid = _grid_codes(m) if int_mode else None
            # The integer rescale y = α·acc + β rounds differently from the
            # graph's float GEMM; inside the chain the next quantizer absorbs
            # that (counts agree exactly), but a layer with no quantized
            # activation after it — the classifier tail — would leak the
            # difference into the logits.  Run such layers through the float
            # path on dequantized values instead, so int plans reproduce the
            # graph's output bit for bit.
            int_ok = rep is not None and fused_act is not None and fused_act.bits is not None
            # β folds the representation offset as offset·Σ_k w_k, which
            # assumes every GEMM column carries it — zero-padding injects
            # true zeros instead, so a padded conv on an offset-carrying rep
            # (the input quantizer's) must dequantize and run float.
            if (
                int_ok
                and isinstance(m, Conv2d)
                and m.padding > 0
                and rep.offset != 0.0
            ):
                int_ok = False
            if grid is not None and int_ok:
                codes, scale, bits = grid
                if isinstance(m, Conv2d):
                    if int_kernels == "legacy":
                        step = conv_cls(index, m, codes, scale, bits, rep,
                                        fused_act, config,
                                        channel_major_in=(layout == "cmajor"))
                    else:
                        step = conv_cls(index, m, codes, scale, bits, rep,
                                        fused_act, config, layout_in=layout)
                    layout = getattr(step, "layout_out", "cmajor")
                    # conv → quant → maxpool: absorb the pool into the conv
                    # step so the rescale runs on the pooled accumulator.
                    if i + 2 < len(chain) and isinstance(chain[i + 2], MaxPool2d):
                        step.fuse_maxpool(chain[i + 2])
                        i += 1  # the max pool was fused
                else:
                    step = lin_cls(index, m, codes, scale, bits, rep,
                                   fused_act, config)
                rep = step.counts_rep
                int_steps += 1
                steps.append(step)
            else:
                dequant_if_counts()
                counts_rep = None
                if int_mode and fused_act is not None and fused_act.bits is not None:
                    counts_rep = CountsRep(fused_act.gain, 0.0, int(fused_act.top), "act")
                cls = FloatConvStep if isinstance(m, Conv2d) else FloatLinearStep
                steps.append(cls(index, m, fused_act, dtype, counts_rep))
                rep = counts_rep
            if fused_act is not None:
                i += 1  # the activation was fused

        elif isinstance(m, _ACT_TYPES):
            dequant_if_counts()
            steps.append(ActStep(index, _act_spec(m), dtype))

        elif isinstance(m, MaxPool2d):
            if layout == "blast":
                # MaxPoolStep pools the trailing axes; batch-last keeps
                # space in the middle, so restore batch-major first.
                restore_batch_major()
            steps.append(MaxPoolStep(index, m))  # monotone: counts pass through

        elif isinstance(m, AvgPool2d):
            dequant_if_counts()
            steps.append(AvgPoolStep(index, m, dtype))

        elif isinstance(m, GlobalAvgPool2d):
            dequant_if_counts()
            steps.append(GlobalAvgPoolStep(index, dtype))

        elif isinstance(m, BatchNorm2d):
            dequant_if_counts()
            steps.append(BatchNormEvalStep(index, m, dtype))

        elif isinstance(m, Flatten):
            steps.append(FlattenStep(index, layout=layout))
            layout = "batch"

        else:  # pragma: no cover - _ATOMIC and branches must stay in sync
            raise PlanError(f"no step compilation for {type(m).__name__}")

        index += 1
        i += 1

    restore_batch_major()
    if rep is not None:
        steps.append(DequantStep(index, rep, dtype))
    plan = ExecutionPlan(steps, pool, chain, dtype, int_steps,
                         int_path=("off" if not int_mode else config.int_path),
                         int_kernels=int_kernels)

    if config.verify_on_trace:
        got = plan.run(np.asarray(sample, dtype=np.float64))
        scale = max(1.0, float(np.abs(ref_out).max()))
        if plan.uses_int_path or plan.dtype != np.float64:
            ok = np.allclose(got, ref_out, rtol=1e-3, atol=1e-3 * scale)
        else:
            ok = np.allclose(got, ref_out, rtol=1e-10, atol=1e-10 * scale)
        if not ok:
            raise PlanError("compiled plan output deviates from the graph executor")
    return plan
