"""repro.runtime — compiled inference and guarded serving on the SNC.

The simulation stack (:mod:`repro.snc`) models what a chip *is*; this
package models how a production deployment *operates* one: compiled
execution plans for high-throughput inference, periodic health probes,
automatic remediation, bounded retries, and guarded fallback to the
quantized software twin when the analog path misses spec.

- :mod:`repro.runtime.plan` — traced execution plans: fused kernels,
  pooled buffers, and the integer fast path for quantized networks.
- :mod:`repro.runtime.engine` — :class:`~repro.runtime.engine.
  InferenceEngine`, the serving front end (staleness tracking, graph
  fallback, batched streaming).
- :mod:`repro.runtime.guard` — :class:`~repro.runtime.guard.
  GuardedSpikingSystem`, the self-healing serving wrapper.
"""

from repro.runtime.engine import EngineConfig, EngineStats, InferenceEngine
from repro.runtime.guard import GuardConfig, GuardedSpikingSystem, RuntimeCounters
from repro.runtime.plan import ExecutionPlan, PlanError, compile_plan

__all__ = [
    "EngineConfig",
    "EngineStats",
    "ExecutionPlan",
    "GuardConfig",
    "GuardedSpikingSystem",
    "InferenceEngine",
    "PlanError",
    "RuntimeCounters",
    "compile_plan",
]
