"""repro.runtime — guarded serving on top of the deployed SNC.

The simulation stack (:mod:`repro.snc`) models what a chip *is*; this
package models how a production deployment *operates* one: periodic health
probes, automatic remediation, bounded retries, and guarded fallback to
the quantized software twin when the analog path misses spec.

- :mod:`repro.runtime.guard` — :class:`~repro.runtime.guard.
  GuardedSpikingSystem`, the self-healing serving wrapper.
"""

from repro.runtime.guard import GuardConfig, GuardedSpikingSystem, RuntimeCounters

__all__ = ["GuardConfig", "GuardedSpikingSystem", "RuntimeCounters"]
