#!/usr/bin/env python3
"""AST lint enforcing repo-specific invariants ruff cannot express.

Rules
-----
``RL001`` — no ``np.random.*`` global-state calls outside
    ``snc/seeding.py``.  Reproducibility rests on explicit
    ``np.random.Generator`` objects threaded through the code; a stray
    ``np.random.seed``/``np.random.normal`` silently couples unrelated
    experiments.  ``default_rng`` and ``Generator`` are fine anywhere.
``RL002`` — no array allocation inside ``ExecutionPlan`` kernel replay
    bodies (the ``run`` methods of ``Step`` subclasses in
    ``src/repro/runtime/plan.py``).  Steady-state inference must allocate
    nothing; workspaces come from the :class:`BufferPool`.  View/cast
    helpers (``asarray``, ``ascontiguousarray``) are allowed.
``RL003`` — public module-level functions in modules re-exported by a
    ``src/repro/**/__init__.py`` must carry docstrings: they are the
    package API.
``RL004`` — no unbounded queues or buffers inside ``repro/serve/``.
    The serving layer's contract is explicit backpressure: admission
    rejects with ``ServerOverloaded`` instead of queueing without limit.
    Flags ``queue.Queue``/``LifoQueue``/``PriorityQueue`` constructed
    without a positive ``maxsize``, ``queue.SimpleQueue`` (never
    boundable), ``collections.deque`` without ``maxlen``, and
    ``self.<attr>.append(...)`` in classes that declare no bound
    (heuristic: no identifier matching ``max``/``bound`` anywhere in the
    class body).
``RL005`` — no direct clock *calls* (``time.time``/``perf_counter``/
    ``monotonic`` and their ``_ns`` variants) in obs-instrumented hot
    paths: ``repro/obs/`` (except ``obs/clock.py``, the one sanctioned
    ``time.*`` user), ``runtime/engine.py``, ``runtime/plan.py``,
    ``runtime/guard.py``, and ``repro/serve/`` (except
    ``serve/loadgen.py``, which is a measurement *client*, not the
    serving path).  Clocks must be injected values so disabled telemetry
    pays zero syscalls and tests can use a FakeClock.  References
    (``clock=time.monotonic`` as a default) are fine — only calls are
    flagged.  Also covers ``repro/flow/`` — the orchestration layer's
    retry/timeout machinery must run on injected clocks — and the event
    modules (``datasets/event_stream.py``, ``snc/temporal.py``,
    ``snc/nir.py``): event time is carried by the µs timestamps in the
    streams themselves, so a wall-clock read there would silently couple
    binning to the host machine.
``RL006`` — no bare ``except:`` and no silently swallowed exceptions in
    the robustness-critical layers ``repro/flow/``, ``repro/serve/``,
    ``repro/runtime/``, and the event modules listed under RL005 (a
    dropped event or a half-read archive must surface, not vanish).
    A bare ``except`` catches
    ``KeyboardInterrupt``/``SystemExit`` and turns a crash into a hang;
    a handler whose body is only ``pass``/``...`` makes a failure
    unobservable — exactly what the failsink/telemetry machinery exists
    to prevent.  Handlers must name the exceptions they can recover from
    and record, re-raise, or transform what they catch.
``RL008`` — shared-memory segments are created only in
    ``serve/shm.py``.  The slab allocator's lease table is the single
    account of live segments (generation-tagged leases, leak checks,
    registry-driven unlink at drain); a bare
    ``multiprocessing.shared_memory.SharedMemory``/``ShareableList``
    constructed anywhere else would be invisible to it, so both the
    import of ``multiprocessing.shared_memory`` and the constructor
    calls are flagged outside that one module.  Attach via
    :func:`repro.serve.shm.attach_segment`, allocate via
    :class:`repro.serve.shm.SlabAllocator`.
``RL007`` — lock discipline for the concurrency-critical classes in
    ``runtime/guard.py`` and ``serve/pool.py``.  Each file declares a
    contract (lock attribute + the shared attributes it protects) in
    ``LOCK_CONTRACTS``; any method that assigns one of those attributes,
    or calls a mutating container method on one (``append``/``update``/
    ``pop``…), must do so lexically inside ``with self.<lock>``.
    ``__init__`` is exempt (no concurrent callers exist yet), as are
    methods whose name ends in ``_locked`` — the naming convention for
    helpers documented as callable only with the lock already held.

Suppress a finding by appending ``# lint: ignore[RL002]`` to the
offending line.

Usage: ``python tools/lint_repro.py src/ [more paths...]``
Exits nonzero when any finding survives suppression.  Standard library
only — the CI lint job runs it without installing the package.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, NamedTuple, Optional, Sequence, Set

#: np.random functions that mutate or read the hidden global RandomState.
GLOBAL_STATE_RANDOM = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "beta", "binomial",
    "chisquare", "dirichlet", "exponential", "gamma", "geometric", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "poisson", "power", "rayleigh",
    "standard_cauchy", "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald", "weibull", "zipf",
    "get_state", "set_state",
})

#: numpy allocators forbidden in kernel replay bodies.  View/cast helpers
#: (asarray, ascontiguousarray, reshape) stay legal — they only copy when
#: the layout demands it, which the plans control deliberately.
ALLOCATORS = frozenset({
    "empty", "zeros", "ones", "full", "empty_like", "zeros_like", "ones_like",
    "full_like", "array", "arange", "linspace", "eye", "identity",
})

RULES = {
    "RL001": "np.random global-state call outside snc/seeding.py",
    "RL002": "array allocation inside an ExecutionPlan kernel replay body",
    "RL003": "public function in an __init__-exported module lacks a docstring",
    "RL004": "unbounded queue or buffer inside the serving layer (repro/serve/)",
    "RL005": "direct time.* clock call in an obs-instrumented hot path",
    "RL006": "bare except or silently swallowed exception in a robustness-critical layer",
    "RL007": "shared attribute mutated outside its declared lock",
    "RL008": "shared-memory segment constructed outside serve/shm.py",
}

#: constructors that create (or attach) raw shared-memory segments;
#: outside serve/shm.py they bypass the lease table (RL008).
SHM_CONSTRUCTORS = frozenset({"SharedMemory", "ShareableList"})

#: the one module allowed to touch multiprocessing.shared_memory.
SHM_MODULE_SUFFIX = "serve/shm.py"

#: RL007 contracts: file suffix → (lock attribute, shared attributes that
#: must only be mutated while lexically inside ``with self.<lock>``).
LOCK_CONTRACTS = {
    "runtime/guard.py": ("_lock", frozenset({
        "counters", "health_log", "last_report", "_requests_since_probe",
    })),
    "serve/pool.py": ("_lifecycle_lock", frozenset({"_threads", "_started"})),
    "serve/procpool.py": ("_lifecycle_lock", frozenset({
        "_dispatchers", "_started", "_closed", "_workers",
    })),
}

#: container methods that mutate their receiver (RL007 flags
#: ``self.<shared>.<mutator>(...)`` outside the lock).
MUTATORS = frozenset({
    "append", "appendleft", "extend", "add", "insert", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "sort",
})

#: directories where RL006 applies: layers whose whole point is making
#: failures visible and recoverable.
EXCEPTION_STRICT_DIRS = ("repro/flow/", "repro/serve/", "repro/runtime/")

#: time-module functions that read a clock; calling one hides a time
#: source the telemetry layer cannot control or fake.
CLOCK_READS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
})

#: suffixes of files where clocks must be injected, not read (RL005).
CLOCK_INJECTED_SUFFIXES = (
    "runtime/engine.py", "runtime/plan.py", "runtime/guard.py",
)

#: RL005 exemptions: clock.py IS the injection point; loadgen.py is a
#: measurement client sitting outside the serving path.
CLOCK_EXEMPT_SUFFIXES = ("obs/clock.py", "serve/loadgen.py")

#: event/temporal modules (RL005 + RL006): binning and interchange are
#: driven by event timestamps, never the host clock, and a swallowed
#: failure there silently drops events or truncates archives.
EVENT_MODULE_SUFFIXES = (
    "datasets/event_stream.py", "snc/temporal.py", "snc/nir.py",
    "serve/stream.py",
)

#: stdlib queue classes that accept (and default to an unbounded) maxsize.
BOUNDABLE_QUEUES = frozenset({"Queue", "LifoQueue", "PriorityQueue"})

_BOUND_NAME_RE = re.compile(r"max|bound", re.IGNORECASE)

_IGNORE_RE = re.compile(r"#\s*lint:\s*ignore\[([A-Z0-9,\s]+)\]")


class Finding(NamedTuple):
    """One lint violation: where, which rule, and what happened."""

    path: Path
    line: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _suppressions(source: str) -> dict:
    """Map line number → set of rule ids suppressed on that line."""
    ignores = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _IGNORE_RE.search(line)
        if match:
            ignores[lineno] = {rule.strip() for rule in match.group(1).split(",")}
    return ignores


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the numpy package (usually {"np"})."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` → ["a", "b", "c"]; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def check_global_random(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL001: np.random.<global-state fn>(...) calls."""
    if path.as_posix().endswith("snc/seeding.py"):
        return
    numpy_names = _numpy_aliases(tree)
    if not numpy_names:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if (
            chain is not None
            and len(chain) == 3
            and chain[0] in numpy_names
            and chain[1] == "random"
            and chain[2] in GLOBAL_STATE_RANDOM
        ):
            yield Finding(
                path, node.lineno, "RL001",
                f"call to {'.'.join(chain)} uses numpy's hidden global RNG; "
                "thread an np.random.Generator through instead (see snc/seeding.py)",
            )


def _is_step_class(cls: ast.ClassDef) -> bool:
    """A Step subclass: named *Step, or directly based on Step."""
    if cls.name.endswith("Step"):
        return True
    for base in cls.bases:
        chain = _attr_chain(base)
        if chain and chain[-1] == "Step":
            return True
    return False


def check_step_allocations(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL002: numpy allocators inside Step.run bodies in runtime/plan.py."""
    if not path.as_posix().endswith("runtime/plan.py"):
        return
    numpy_names = _numpy_aliases(tree)
    for cls in tree.body:
        if not (isinstance(cls, ast.ClassDef) and _is_step_class(cls)):
            continue
        for fn in cls.body:
            if not (isinstance(fn, ast.FunctionDef) and fn.name == "run"):
                continue
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                chain = _attr_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in numpy_names
                    and chain[1] in ALLOCATORS
                ):
                    yield Finding(
                        path, node.lineno, "RL002",
                        f"{'.'.join(chain)} allocates inside {cls.name}.run; "
                        "take a pooled buffer (pool.get) so steady-state "
                        "replay allocates nothing",
                    )


def _exported_modules(root: Path) -> Set[Path]:
    """Module files re-exported by any ``__init__.py`` under ``root``.

    A module counts as exported when an ``__init__.py`` does
    ``from <pkg>.<mod> import ...``; those modules form the package API
    surface whose public functions must be documented.
    """
    exported: Set[Path] = set()
    for init in root.rglob("__init__.py"):
        try:
            tree = ast.parse(init.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom) or node.module is None or node.level:
                continue
            candidate = root / Path(*node.module.split(".")[1:])
            module_file = candidate.with_suffix(".py")
            if node.module.startswith("repro.") and module_file.is_file():
                exported.add(module_file.resolve())
    return exported


def check_docstrings(path: Path, tree: ast.Module,
                     exported: Set[Path]) -> Iterator[Finding]:
    """RL003: public top-level functions in exported modules need docstrings."""
    if path.resolve() not in exported:
        return
    for node in tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and not node.name.startswith("_")
            and ast.get_docstring(node) is None
        ):
            yield Finding(
                path, node.lineno, "RL003",
                f"public function {node.name}() in an __init__-exported "
                "module has no docstring",
            )


def _has_positive_maxsize(node: ast.Call) -> bool:
    """Whether a queue constructor passes a usable bound.

    A literal ``0`` (stdlib spelling of "unbounded") or negative constant
    does not count; any other expression is assumed to be a real bound.
    """
    candidates = list(node.args[:1])
    candidates.extend(kw.value for kw in node.keywords if kw.arg == "maxsize")
    for value in candidates:
        if isinstance(value, ast.Constant):
            if isinstance(value.value, (int, float)) and value.value > 0:
                return True
        else:
            return True
    return False


def _class_declares_bound(cls: ast.ClassDef) -> bool:
    """Heuristic: any identifier in the class body mentions max/bound."""
    for node in ast.walk(cls):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.arg):
            name = node.arg
        if name is not None and _BOUND_NAME_RE.search(name):
            return True
    return False


def check_bounded_queues(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL004: unbounded queues/buffers inside src/repro/serve/."""
    if "repro/serve/" not in path.as_posix():
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        name = chain[-1]
        stdlib_spelling = len(chain) == 1 or (
            len(chain) == 2 and chain[0] in ("queue", "collections")
        )
        if not stdlib_spelling:
            continue
        if name in BOUNDABLE_QUEUES and not _has_positive_maxsize(node):
            yield Finding(
                path, node.lineno, "RL004",
                f"{name}() without a positive maxsize is an unbounded queue; "
                "the serving layer must reject load it cannot hold",
            )
        elif name == "SimpleQueue":
            yield Finding(
                path, node.lineno, "RL004",
                "SimpleQueue cannot be bounded; use a maxsize-limited queue "
                "or an explicit row-count bound",
            )
        elif name == "deque" and not any(
            kw.arg == "maxlen" for kw in node.keywords
        ) and len(node.args) < 2:
            yield Finding(
                path, node.lineno, "RL004",
                "deque() without maxlen grows without bound; pass maxlen or "
                "enforce an explicit bound before appending",
            )
    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef) or _class_declares_bound(cls):
            continue
        for node in ast.walk(cls):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                chain = _attr_chain(node.func.value)
                if chain and chain[0] == "self":
                    yield Finding(
                        path, node.lineno, "RL004",
                        f"{cls.name} appends to self.{'.'.join(chain[1:])} but "
                        "declares no bound (no max*/bound* identifier in the "
                        "class); buffers in repro/serve must be bounded",
                    )


def _time_aliases(tree: ast.Module) -> tuple:
    """(module aliases for ``time``, local names bound to clock reads).

    Catches both ``import time`` / ``import time as t`` and
    ``from time import perf_counter [as pc]``.
    """
    modules: Set[str] = set()
    functions: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in CLOCK_READS:
                    functions[alias.asname or alias.name] = alias.name
    return modules, functions


def check_injected_clocks(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL005: direct clock calls where the clock must be injected."""
    posix = path.as_posix()
    if any(posix.endswith(suffix) for suffix in CLOCK_EXEMPT_SUFFIXES):
        return
    covered = (
        "repro/obs/" in posix
        or "repro/serve/" in posix
        or "repro/flow/" in posix
        or any(posix.endswith(suffix) for suffix in CLOCK_INJECTED_SUFFIXES)
        or any(posix.endswith(suffix) for suffix in EVENT_MODULE_SUFFIXES)
    )
    if not covered:
        return
    modules, functions = _time_aliases(tree)
    if not modules and not functions:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = _attr_chain(node.func)
        if chain is None:
            continue
        read = None
        if len(chain) == 2 and chain[0] in modules and chain[1] in CLOCK_READS:
            read = f"{chain[0]}.{chain[1]}"
        elif len(chain) == 1 and chain[0] in functions:
            read = f"{chain[0]} (time.{functions[chain[0]]})"
        if read is not None:
            yield Finding(
                path, node.lineno, "RL005",
                f"{read}() reads a hidden clock in an instrumented hot path; "
                "accept a Clock value (see repro/obs/clock.py) so telemetry "
                "stays fake-able and free when disabled",
            )


def _handler_body_is_silent(handler: ast.ExceptHandler) -> bool:
    """Whether a handler's body does nothing observable (only pass/...)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
        ):
            continue  # `...` or a bare docstring-style literal
        return False
    return True


def check_exception_hygiene(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL006: bare excepts / silent swallowing in flow, serve, runtime."""
    posix = path.as_posix()
    covered = any(directory in posix for directory in EXCEPTION_STRICT_DIRS) \
        or any(posix.endswith(suffix) for suffix in EVENT_MODULE_SUFFIXES)
    if not covered:
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                path, node.lineno, "RL006",
                "bare `except:` also catches KeyboardInterrupt/SystemExit and "
                "turns a kill into a hang; name the exceptions this handler "
                "can actually recover from",
            )
        elif _handler_body_is_silent(node):
            yield Finding(
                path, node.lineno, "RL006",
                "handler swallows the exception without recording it; route "
                "it to a Failsink, count it in telemetry, or re-raise — "
                "silent failures defeat the robustness layer",
            )


def check_shm_exclusivity(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL008: multiprocessing.shared_memory only inside serve/shm.py."""
    if path.as_posix().endswith(SHM_MODULE_SUFFIX):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("multiprocessing.shared_memory"):
                    yield Finding(
                        path, node.lineno, "RL008",
                        f"import of {alias.name} outside serve/shm.py bypasses "
                        "the lease allocator; use SlabAllocator / "
                        "attach_segment from repro.serve.shm",
                    )
        elif isinstance(node, ast.ImportFrom) and node.module is not None:
            names = {alias.name for alias in node.names}
            offending = (
                node.module.startswith("multiprocessing.shared_memory")
                or (node.module == "multiprocessing" and "shared_memory" in names)
            )
            if offending:
                yield Finding(
                    path, node.lineno, "RL008",
                    "import of multiprocessing.shared_memory outside "
                    "serve/shm.py bypasses the lease allocator; use "
                    "SlabAllocator / attach_segment from repro.serve.shm",
                )
        elif isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is not None and chain[-1] in SHM_CONSTRUCTORS:
                yield Finding(
                    path, node.lineno, "RL008",
                    f"{'.'.join(chain)}() constructs a raw shared-memory "
                    "segment outside serve/shm.py; every segment must go "
                    "through the lease allocator so the leak checks stay "
                    "sound",
                )


def _locks_in_with(node: ast.With, lock: str) -> bool:
    """Whether one of the ``with`` items acquires ``self.…<lock>``."""
    for item in node.items:
        chain = _attr_chain(item.context_expr)
        if chain is not None and chain[0] == "self" and chain[-1] == lock:
            return True
    return False


def _flatten_targets(targets: Sequence[ast.AST]) -> Iterator[ast.AST]:
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            yield from _flatten_targets(target.elts)
        else:
            yield target


def _unlocked_mutations(path: Path, stmt: ast.stmt, lock: str,
                        attrs: frozenset) -> Iterator[Finding]:
    """RL007 findings for one simple statement outside the lock."""
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in _flatten_targets(targets):
            chain = _attr_chain(target)
            if (
                chain is not None
                and len(chain) >= 2
                and chain[0] == "self"
                and chain[1] in attrs
            ):
                yield Finding(
                    path, stmt.lineno, "RL007",
                    f"self.{'.'.join(chain[1:])} is assigned outside "
                    f"`with self.{lock}`; shared state must be mutated under "
                    "its declared lock (or from a *_locked helper)",
                )
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        chain = _attr_chain(stmt.value.func)
        if (
            chain is not None
            and len(chain) >= 3
            and chain[0] == "self"
            and chain[1] in attrs
            and chain[-1] in MUTATORS
        ):
            yield Finding(
                path, stmt.lineno, "RL007",
                f"self.{'.'.join(chain[1:])}() mutates shared state outside "
                f"`with self.{lock}`; acquire the lock first (or move this "
                "into a *_locked helper)",
            )


def _walk_lock_scope(path: Path, stmts: Sequence[ast.stmt], lock: str,
                     attrs: frozenset, guarded: bool) -> Iterator[Finding]:
    """Walk statements tracking whether the contract lock is lexically held."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested defs run later, under their own discipline
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = guarded or _locks_in_with(stmt, lock)
            yield from _walk_lock_scope(path, stmt.body, lock, attrs, inner)
            continue
        if not guarded:
            yield from _unlocked_mutations(path, stmt, lock, attrs)
        for field in ("body", "orelse", "finalbody"):
            children = getattr(stmt, field, None)
            if children:
                yield from _walk_lock_scope(path, children, lock, attrs, guarded)
        for handler in getattr(stmt, "handlers", ()) or ():
            yield from _walk_lock_scope(path, handler.body, lock, attrs, guarded)


def check_lock_discipline(path: Path, tree: ast.Module) -> Iterator[Finding]:
    """RL007: contract-listed shared attributes mutated outside their lock."""
    posix = path.as_posix()
    contract = next(
        (spec for suffix, spec in LOCK_CONTRACTS.items()
         if posix.endswith(suffix)),
        None,
    )
    if contract is None:
        return
    lock, attrs = contract
    for cls in tree.body:
        if not isinstance(cls, ast.ClassDef):
            continue
        for fn in cls.body:
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if fn.name == "__init__" or fn.name.endswith("_locked"):
                continue
            yield from _walk_lock_scope(path, fn.body, lock, attrs, False)


def lint_paths(paths: Sequence[Path]) -> List[Finding]:
    """Lint every ``.py`` file under the given paths; return the findings."""
    files: List[Path] = []
    repro_roots: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
            repro_roots.extend(p for p in (path / "repro",) if p.is_dir())
            if path.name == "repro":
                repro_roots.append(path)
        elif path.suffix == ".py":
            files.append(path)
    exported: Set[Path] = set()
    for root in repro_roots:
        exported |= _exported_modules(root)

    findings: List[Finding] = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            print(f"{file}: syntax error: {exc}", file=sys.stderr)
            continue
        ignores = _suppressions(source)
        for finding in (
            *check_global_random(file, tree),
            *check_step_allocations(file, tree),
            *check_docstrings(file, tree, exported),
            *check_bounded_queues(file, tree),
            *check_injected_clocks(file, tree),
            *check_exception_hygiene(file, tree),
            *check_shm_exclusivity(file, tree),
            *check_lock_discipline(file, tree),
        ):
            if finding.rule not in ignores.get(finding.line, ()):
                findings.append(finding)
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: lint the given paths, print findings, exit 0/1."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="+", type=Path,
                        help="files or directories to lint (e.g. src/)")
    args = parser.parse_args(argv)
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
